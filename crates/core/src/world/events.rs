//! The scheduled-event queue and the **two-hop** departure / offline-
//! timeout teardown.
//!
//! Every event carries the `epoch` of the peer slot it was scheduled
//! for; a mismatch at fire time means the slot was recycled (the peer
//! departed and was replaced) and the event is silently dropped.
//! Offline timeouts additionally carry the `session_seq` of the offline
//! run they were armed for, so a reconnection invalidates them without
//! any queue surgery.
//!
//! Deaths and offline timeouts used to run in a sequential cross-shard
//! pass; they now split along the shard boundary:
//!
//! * **Hop 1** (here, on the owning [`ShardLane`], parallel): validate
//!   the event, tear down the slot's *own* state — archives emptied,
//!   hosted ledger cleared, the departed slot recycled and re-seeded
//!   from the shard RNG — and convert every cross-shard side effect
//!   into a [`Msg`]: a [`Msg::Release`] to each partner that hosted one
//!   of the dying peer's blocks, a [`Msg::Drop`] to the owner of each
//!   block the peer hosted.
//! * **Hop 2** ([`WorkLane::apply_drop`] / `apply_release`, parallel by
//!   destination shard): prune the remote ends, count losses the
//!   instant `present < k`, and re-enqueue owners that fell below their
//!   threshold. Entries already torn down by the *other* end's hop 1 in
//!   the same round are skipped silently — the block-drop event was (or
//!   will be) emitted exactly once, always on the owner side.

use peerback_churn::SessionSampler;
use peerback_sim::Round;

use crate::config::{MaintenancePolicy, SimConfig};

use super::exec::Msg;
use super::hooks::WorldEvent;
use super::peers::{ArchiveIdx, PeerId};
use super::shard::ShardLane;
use super::BackupWorld;

/// Scheduled future events. Events carry the epoch of the peer they were
/// scheduled for; a mismatch means the peer departed in the meantime and
/// the event is stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(in crate::world) enum Event {
    /// The peer definitively leaves the system.
    Death {
        /// Affected peer slot.
        peer: PeerId,
        /// Slot epoch the event was armed for.
        epoch: u32,
    },
    /// The peer's session flips between online and offline.
    Toggle {
        /// Affected peer slot.
        peer: PeerId,
        /// Slot epoch the event was armed for.
        epoch: u32,
    },
    /// The peer has been offline for the full monitoring timeout: its
    /// hosted blocks are written off (valid only if `seq` still matches
    /// the offline session it was scheduled for).
    OfflineTimeout {
        /// Affected peer slot.
        peer: PeerId,
        /// Slot epoch the event was armed for.
        epoch: u32,
        /// Session sequence number of the offline run.
        seq: u32,
    },
    /// The peer crosses an age-category boundary.
    CatAdvance {
        /// Affected peer slot.
        peer: PeerId,
        /// Slot epoch the event was armed for.
        epoch: u32,
    },
    /// Proactive-maintenance tick (only with `MaintenancePolicy::Proactive`).
    ProactiveTick {
        /// Affected peer slot.
        peer: PeerId,
        /// Slot epoch the event was armed for.
        epoch: u32,
    },
}

impl ShardLane<'_> {
    /// Hop 1 of a departure (§4.1: blocks vanish immediately, the peer
    /// is immediately replaced). Strictly shard-local plus messages.
    pub(in crate::world) fn process_death_local(
        &mut self,
        id: PeerId,
        round: u64,
        cfg: &SimConfig,
        samplers: &[SessionSampler],
    ) {
        debug_assert!(self.local(id).observer.is_none());
        self.delta.departures += 1;
        if self.estimates_on {
            // Record the completed lifetime before any teardown:
            // `uptime_at` must still see the open session (set_online
            // below does not bank it into the ledger).
            let peer = self.local(id);
            let rec = peerback_estimate::DeathRecord {
                lifetime: peer.age_at(round),
                uptime: peer.uptime_at(round),
                sessions: peer.session_seq,
            };
            self.obs.push(rec);
        }
        if self.local(id).online {
            self.set_online(id, false);
        }
        let cat = self.local(id).category_at(round);
        self.census_delta[cat.index()] -= 1;

        // Tear down this peer's own archives: the blocks it stored on
        // its partners are dropped (events emitted here, on the owner
        // side) and each partner's ledger is pruned in hop 2. Indexed
        // walks + `clear` rather than `mem::take`: the slot is recycled
        // in place, and keeping the vectors' capacity is what lets the
        // replacement peer re-grow them without heap traffic.
        for aidx in 0..self.local(id).archives.len() {
            let (fresh, total) = {
                let archive = &self.local(id).archives[aidx];
                (
                    archive.partners.len(),
                    archive.partners.len() + archive.stale_partners.len(),
                )
            };
            for i in 0..total {
                let archive = &self.local(id).archives[aidx];
                let host = if i < fresh {
                    archive.partners[i]
                } else {
                    archive.stale_partners[i - fresh]
                };
                self.emit(WorldEvent::BlockDropped {
                    owner: id,
                    archive: aidx as ArchiveIdx,
                    host,
                });
                self.out.push(Msg::Release {
                    host,
                    owner: id,
                    aidx: aidx as ArchiveIdx,
                    owner_observer: false,
                });
            }
            let archive = &mut self.local(id).archives[aidx];
            archive.partners.clear();
            archive.stale_partners.clear();
        }

        // Its hosted blocks disappear with it; the owners learn in hop 2.
        for i in 0..self.local(id).hosted.len() {
            let (owner, aidx) = self.local(id).hosted[i];
            self.out.push(Msg::Drop {
                owner,
                aidx,
                host: id,
            });
        }
        self.local(id).hosted.clear();
        self.local(id).quota_used = 0;

        // `PeerDeparted` is emitted by the driver once every drop of
        // this round has been delivered (the observer contract).
        self.departed.push(id);

        // Immediate replacement in the same slot, bumped epoch.
        let peer = self.local(id);
        peer.epoch = peer.epoch.wrapping_add(1);
        peer.session_seq = 0;
        self.init_regular_peer(id, round, cfg, samplers);
    }

    /// Hop 1 of an offline write-off (§2.2.3): the network considers the
    /// peer gone and writes its hosted blocks off.
    pub(in crate::world) fn process_timeout_local(&mut self, id: PeerId) {
        if self.local(id).hosted.is_empty() {
            return;
        }
        self.delta.partner_timeouts += 1;
        // Indexed walk + `clear`, not `mem::take`: the peer keeps its
        // ledger's capacity for when it reconnects and hosts again.
        for i in 0..self.local(id).hosted.len() {
            let (owner, aidx) = self.local(id).hosted[i];
            self.out.push(Msg::Drop {
                owner,
                aidx,
                host: id,
            });
        }
        self.local(id).hosted.clear();
        self.local(id).quota_used = 0;
    }
}

impl super::exec::WorkLane<'_> {
    /// Hop 2 of a teardown, owner side: `host`'s copy of one
    /// `(owner, aidx)` block vanished. Prunes the partner entry, emits
    /// the drop, and runs the §3.2 consequences — loss the instant
    /// `present < k`, re-enqueue below the repair threshold.
    ///
    /// Skips silently when the entry is already gone: the owner's own
    /// hop-1 teardown (or an earlier loss this round) released it, and
    /// that path already emitted the drop.
    pub(in crate::world) fn apply_drop(
        &mut self,
        cfg: &SimConfig,
        owner: PeerId,
        aidx: ArchiveIdx,
        host: PeerId,
        round: u64,
    ) {
        let k = cfg.k as u32;
        let threshold_policy = !matches!(cfg.maintenance, MaintenancePolicy::Proactive { .. });
        let threshold = self.peer(owner).threshold as u32;
        let archive = &mut self.peer_mut(owner).archives[aidx as usize];
        if let Some(pos) = archive.partners.iter().position(|&p| p == host) {
            archive.partners.swap_remove(pos);
        } else if let Some(pos) = archive.stale_partners.iter().position(|&p| p == host) {
            archive.stale_partners.swap_remove(pos);
        } else {
            return; // torn down earlier this round
        }
        self.emit(WorldEvent::BlockDropped {
            owner,
            archive: aidx,
            host,
        });
        let archive = &self.peer(owner).archives[aidx as usize];
        if !archive.joined {
            return; // mid-join: the join loop re-acquires
        }
        if archive.present() < k {
            self.record_loss(owner, aidx, round);
        } else if threshold_policy && archive.present() < threshold {
            // Enqueue regardless of the owner's session state;
            // activation skips offline owners and reconnection
            // re-enqueues them.
            self.enqueue(owner);
        }
    }
}

impl BackupWorld {
    pub(in crate::world) fn schedule_proactive(&mut self, id: PeerId, round: u64) {
        if let MaintenancePolicy::Proactive { tick_rounds } = self.cfg.maintenance {
            let epoch = self.peers[id as usize].epoch;
            self.schedule_for(
                id,
                Round(round + tick_rounds),
                Event::ProactiveTick { peer: id, epoch },
            );
        }
    }

    /// White-box form of the write-off path: converts `host`'s hosted
    /// ledger into drop messages and delivers them through the same
    /// staged machinery the round driver uses.
    #[cfg(test)]
    pub(in crate::world) fn drop_hosted_blocks(&mut self, host: PeerId, round: u64) {
        let hosted = core::mem::take(&mut self.peers[host as usize].hosted);
        self.peers[host as usize].quota_used = 0;
        let shard = self.layout.shard_of(host);
        for (owner, aidx) in hosted {
            self.arena.outboxes[shard].push(Msg::Drop { owner, aidx, host });
        }
        self.run_deliver(round);
    }
}
