//! The scheduled-event queue: event kinds, staleness filtering, and the
//! **cross-shard** handlers — departures and offline timeouts, the two
//! kinds whose block write-offs reach owners in arbitrary shards and
//! therefore run in the sequential phase of the round. The strictly
//! shard-local kinds (session toggles, age-category advances, proactive
//! ticks) are handled in [`super::shard`].
//!
//! Every event carries the `epoch` of the peer slot it was scheduled
//! for; a mismatch at fire time means the slot was recycled (the peer
//! departed and was replaced) and the event is silently dropped.
//! Offline timeouts additionally carry the `session_seq` of the offline
//! run they were armed for, so a reconnection invalidates them without
//! any queue surgery.

use peerback_sim::Round;

use crate::config::MaintenancePolicy;

use super::hooks::WorldEvent;
use super::peers::{ArchiveIdx, PeerId};
use super::BackupWorld;

/// Scheduled future events. Events carry the epoch of the peer they were
/// scheduled for; a mismatch means the peer departed in the meantime and
/// the event is stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(in crate::world) enum Event {
    /// The peer definitively leaves the system.
    Death {
        /// Affected peer slot.
        peer: PeerId,
        /// Slot epoch the event was armed for.
        epoch: u32,
    },
    /// The peer's session flips between online and offline.
    Toggle {
        /// Affected peer slot.
        peer: PeerId,
        /// Slot epoch the event was armed for.
        epoch: u32,
    },
    /// The peer has been offline for the full monitoring timeout: its
    /// hosted blocks are written off (valid only if `seq` still matches
    /// the offline session it was scheduled for).
    OfflineTimeout {
        /// Affected peer slot.
        peer: PeerId,
        /// Slot epoch the event was armed for.
        epoch: u32,
        /// Session sequence number of the offline run.
        seq: u32,
    },
    /// The peer crosses an age-category boundary.
    CatAdvance {
        /// Affected peer slot.
        peer: PeerId,
        /// Slot epoch the event was armed for.
        epoch: u32,
    },
    /// Proactive-maintenance tick (only with `MaintenancePolicy::Proactive`).
    ProactiveTick {
        /// Affected peer slot.
        peer: PeerId,
        /// Slot epoch the event was armed for.
        epoch: u32,
    },
}

impl BackupWorld {
    /// Handles one deferred cross-shard event (sequential phase).
    pub(in crate::world) fn handle_deferred(&mut self, event: Event, round: u64) {
        match event {
            Event::Death { peer, epoch } => {
                if self.peers[peer as usize].epoch == epoch {
                    self.process_death(peer, round);
                }
            }
            Event::OfflineTimeout { peer, epoch, seq } => {
                let p = &self.peers[peer as usize];
                if p.epoch == epoch && p.session_seq == seq && !p.online {
                    self.process_offline_timeout(peer, round);
                }
            }
            Event::Toggle { .. } | Event::CatAdvance { .. } | Event::ProactiveTick { .. } => {
                unreachable!("shard-local events are handled in the parallel pass")
            }
        }
    }

    pub(in crate::world) fn schedule_proactive(&mut self, id: PeerId, round: u64) {
        if let MaintenancePolicy::Proactive { tick_rounds } = self.cfg.maintenance {
            let epoch = self.peers[id as usize].epoch;
            self.schedule_for(
                id,
                Round(round + tick_rounds),
                Event::ProactiveTick { peer: id, epoch },
            );
        }
    }

    pub(in crate::world) fn schedule_offline_timeout(&mut self, id: PeerId, round: u64) {
        if self.cfg.offline_timeout == 0 {
            return;
        }
        let peer = &self.peers[id as usize];
        debug_assert!(!peer.online);
        let (epoch, seq) = (peer.epoch, peer.session_seq);
        self.schedule_for(
            id,
            Round(round + self.cfg.offline_timeout),
            Event::OfflineTimeout {
                peer: id,
                epoch,
                seq,
            },
        );
    }

    /// Write off all blocks hosted by `host` and notify the owners.
    /// Shared by deaths ("blocks are immediately removed", §4.1) and
    /// offline timeouts (§2.2.3).
    pub(in crate::world) fn drop_hosted_blocks(&mut self, host: PeerId, round: u64) {
        let hosted = core::mem::take(&mut self.peers[host as usize].hosted);
        self.peers[host as usize].quota_used = 0;
        let k = self.k();
        let threshold_policy = !matches!(self.cfg.maintenance, MaintenancePolicy::Proactive { .. });
        for (owner_id, aidx) in hosted {
            let threshold = self.peers[owner_id as usize].threshold as u32;
            let archive = &mut self.peers[owner_id as usize].archives[aidx as usize];
            if let Some(pos) = archive.partners.iter().position(|&p| p == host) {
                archive.partners.swap_remove(pos);
            } else {
                let pos = archive
                    .stale_partners
                    .iter()
                    .position(|&p| p == host)
                    .expect("hosted entry implies a partner entry");
                archive.stale_partners.swap_remove(pos);
            }
            if self.events_on() {
                self.emit(WorldEvent::BlockDropped {
                    owner: owner_id,
                    archive: aidx,
                    host,
                });
            }
            let archive = &self.peers[owner_id as usize].archives[aidx as usize];
            if !archive.joined {
                continue; // mid-join: the join loop re-acquires
            }
            if archive.present() < k {
                self.record_loss(owner_id, aidx, round);
            } else if threshold_policy && archive.present() < threshold {
                // Enqueue regardless of the owner's session state;
                // activation skips offline owners and reconnection
                // re-enqueues them.
                self.enqueue(owner_id);
            }
        }
    }

    pub(in crate::world) fn process_death(&mut self, id: PeerId, round: u64) {
        debug_assert!(self.peers[id as usize].observer.is_none());
        self.metrics.diag.departures += 1;
        if self.peers[id as usize].online {
            self.set_online(id, false);
        }
        let cat = self.peers[id as usize].category_at(round);
        self.census[cat.index()] -= 1;

        // Tear down this peer's own archives: free the blocks it stored
        // on its partners.
        for aidx in 0..self.peers[id as usize].archives.len() {
            let archive = &mut self.peers[id as usize].archives[aidx];
            let partners = core::mem::take(&mut archive.partners);
            let stale = core::mem::take(&mut archive.stale_partners);
            for p in partners.into_iter().chain(stale) {
                self.remove_hosted_entry(p, id, aidx as ArchiveIdx, false);
            }
        }

        // Its hosted blocks disappear with it.
        self.drop_hosted_blocks(id, round);

        // Every block touching this peer has now been dropped; announce
        // the slot recycle so observers reset per-slot state.
        if self.events_on() {
            self.emit(WorldEvent::PeerDeparted { peer: id });
        }

        // Immediate replacement (§4.1: "each peer leaving the system is
        // immediately replaced").
        let peer = &mut self.peers[id as usize];
        peer.epoch = peer.epoch.wrapping_add(1);
        peer.session_seq = 0;
        self.init_regular_peer(id, round);
    }

    /// The peer has been unreachable for the whole threshold period: the
    /// network writes its hosted blocks off (§2.2.3).
    pub(in crate::world) fn process_offline_timeout(&mut self, id: PeerId, round: u64) {
        if self.peers[id as usize].hosted.is_empty() {
            return;
        }
        self.metrics.diag.partner_timeouts += 1;
        self.drop_hosted_blocks(id, round);
    }
}
