//! Sharding: the fixed logical partition of the peer table and the
//! per-shard state that makes intra-run parallelism deterministic.
//!
//! ## The determinism contract
//!
//! Same-seed runs must produce bit-identical [`Metrics`] and
//! [`WorldEvent`] streams at **any** `SimConfig::shards` value. The knob
//! therefore only chooses how many *worker threads* execute the round;
//! everything with semantic weight is keyed to a **logical** partition
//! that depends solely on the configured capacity:
//!
//! * The peer table is split into [`ShardLayout::count`] contiguous
//!   slot ranges (`L = clamp(capacity / shard_slots, 1, 512)`, with
//!   `SimConfig::shard_slots` defaulting to 64). `shard_slots` is a
//!   **semantic** knob — it changes the partition and the per-shard RNG
//!   streams — unlike `shards`, which only picks the worker count.
//! * Each logical shard owns its own timing-wheel segment, online
//!   index, pending-activation queue, and an RNG stream forked from the
//!   run seed + the shard's index ([`peerback_sim::derive_seed`]).
//! * Within a round, each phase visits shards in index order and peers
//!   in slot order, so every shard stream sees a fixed draw sequence no
//!   matter how many threads raced through the parallel phases.
//!
//! ## The phased round
//!
//! [`BackupWorld`](super::BackupWorld) executes one round as:
//!
//! 1. **Spawn** (sequential): population ramp; peer initialisation
//!    draws from the owning shard's stream.
//! 2. **Local events** (parallel): each shard advances its wheel
//!    segment, sorts the due events by `(peer, kind)`, and handles the
//!    strictly shard-local kinds — session toggles, age-category
//!    advances, proactive ticks. Deaths and offline timeouts (the two
//!    kinds that drop blocks on peers of *other* shards) are deferred.
//! 3. **Cross-shard events** (sequential, shard order): deferred
//!    deaths/timeouts run with full access to the world.
//! 4. **Proposals** (parallel): pending owners build acceptance-gated
//!    candidate pools against the *frozen* end-of-event-phase state,
//!    drawing from their shard's stream.
//! 5. **Commit** (sequential, peer-id order): proposals are re-validated
//!    (quota may have filled) and applied; all [`WorldEvent`] emission
//!    happens in the sequential phases, so the stream needs no merge.
//!
//! [`Metrics`]: crate::metrics::Metrics
//! [`WorldEvent`]: super::hooks::WorldEvent

use peerback_churn::SessionSampler;
use peerback_estimate::DeathRecord;
use peerback_sim::{HierarchicalWheel, Round, SimRng};

use crate::age::AgeCategory;
use crate::config::SimConfig;
use crate::select::Candidate;

use super::events::Event;
use super::exec::{MetricsDelta, Msg};
use super::hooks::WorldEvent;
use super::peers::{ArchiveIdx, PeerId};
use super::table::PeerView;

/// Upper bound on logical shards (and therefore on useful worker
/// threads). A million-peer table at the default 64 slots per shard
/// saturates this, feeding hundreds of workers.
pub(in crate::world) const MAX_SHARDS: usize = 512;

/// Inner (one bucket per round) level of the per-shard hierarchical
/// timing wheel.
const SHARD_WHEEL_INNER: usize = 512;

/// Outer (one bucket per inner lap) level: the direct horizon is
/// `512 × 512 = 262,144` rounds ≈ 30 simulated years, so multi-year
/// lifetimes are touched at most twice instead of recirculating every
/// 2,048 rounds as on the old single-level wheel.
const SHARD_WHEEL_OUTER: usize = 512;

/// The fixed logical partition of the peer-slot space.
///
/// A pure function of the configured capacity — never of the worker
/// count — so that every `shards` setting sees the same partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(in crate::world) struct ShardLayout {
    /// Number of logical shards.
    pub(in crate::world) count: usize,
    /// Slots per shard (the last shard may be short).
    pub(in crate::world) shard_size: usize,
}

impl ShardLayout {
    /// Computes the layout for a peer-slot capacity at `shard_slots`
    /// minimum slots per shard (`SimConfig::shard_slots`, default 64).
    pub(in crate::world) fn for_capacity(capacity: usize, shard_slots: usize) -> Self {
        let target = (capacity / shard_slots.max(1)).clamp(1, MAX_SHARDS);
        let shard_size = capacity.div_ceil(target).max(1);
        // Re-derive the count from the rounded-up size so the last
        // shard is never empty (ceil twice can otherwise overshoot).
        ShardLayout {
            count: capacity.div_ceil(shard_size).max(1),
            shard_size,
        }
    }

    /// The logical shard owning slot `id`.
    #[inline]
    pub(in crate::world) fn shard_of(&self, id: PeerId) -> usize {
        (id as usize / self.shard_size).min(self.count - 1)
    }
}

/// One proposed partner-acquisition step, computed against frozen state
/// in the parallel proposal phase and applied in the sequential commit
/// phase.
#[derive(Debug)]
pub(in crate::world) struct Proposal {
    /// Owner of the archive needing work.
    pub(in crate::world) owner: PeerId,
    /// Archive index within the owner.
    pub(in crate::world) aidx: ArchiveIdx,
    /// What kind of protocol step the pool was built for.
    pub(in crate::world) kind: ActionKind,
    /// Partners needed when the pool was built (commit re-derives the
    /// same value; kept for the drift assertion).
    pub(in crate::world) d: u32,
    /// Whether the owner is an observer (observer placements are quota-
    /// exempt; carried so host shards need no cross-shard lookup).
    pub(in crate::world) owner_observer: bool,
    /// Ranked candidate pool. The two-phase commit claims ranks `0..d`
    /// first and falls back to the ranks beyond `d` for denied claims,
    /// so earlier grants filling a candidate's quota degrade the pool
    /// instead of voiding the step.
    pub(in crate::world) pool: Vec<Candidate>,
}

/// The protocol step a [`Proposal`] belongs to. The commit phase
/// re-derives the trigger decision from live state (identical to the
/// frozen state for owner-local fields) and asserts it matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(in crate::world) enum ActionKind {
    /// Initial upload of one archive.
    Join,
    /// Threshold-triggered repair (reactive or adaptive policy).
    Threshold,
    /// Proactive top-up tick.
    Proactive,
}

/// Reusable per-worker scratch for pool building. Purely an execution
/// buffer: its contents never influence results, so one instance per
/// worker thread (not per logical shard) suffices. (The frozen online
/// prefix sums live on the world itself — `BackupWorld::prefix` — and
/// are shared read-only across workers.)
#[derive(Debug)]
pub(in crate::world) struct Scratch {
    /// Generation-counted exclusion set (`mark[p] == tag` ⇒ excluded).
    pub(in crate::world) mark: Vec<u32>,
    /// Current generation tag.
    pub(in crate::world) tag: u32,
    /// Recycled AgeBased build index (re-armed per pool build; its
    /// heap allocation is the only state that survives, and an empty
    /// re-armed index is observationally a fresh one).
    pub(in crate::world) age_index: crate::select::AgeOrderedIndex,
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch {
            mark: Vec::new(),
            tag: 0,
            age_index: crate::select::AgeOrderedIndex::new(1),
        }
    }
}

impl Scratch {
    /// Starts a new exclusion generation sized for `slots` peers and
    /// returns the fresh tag.
    pub(in crate::world) fn begin(&mut self, slots: usize) -> u32 {
        if self.mark.len() < slots {
            self.mark.resize(slots, 0);
        }
        self.tag = self.tag.wrapping_add(1);
        if self.tag == 0 {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.tag = 1;
        }
        self.tag
    }
}

/// Deterministic ordering rank for events due in the same round on the
/// same peer; see [`event_sort_key`].
fn kind_rank(event: &Event) -> u8 {
    match event {
        Event::Toggle { .. } => 0,
        Event::CatAdvance { .. } => 1,
        Event::ProactiveTick { .. } => 2,
        Event::Death { .. } => 3,
        Event::OfflineTimeout { .. } => 4,
        Event::Quarantine { .. } => 5,
    }
}

/// Total order on same-round events: by peer slot, then a fixed kind
/// rank, then the session sequence (several stale toggles or offline
/// timeouts can share a round). The global wheel used to fire events in
/// hash-bucket insertion order; a sorted order is what makes per-shard
/// firing independent of how slots were interleaved at schedule time.
pub(in crate::world) fn event_sort_key(event: &Event) -> (PeerId, u8, u32) {
    let (peer, seq) = match *event {
        Event::Death { peer, .. }
        | Event::CatAdvance { peer, .. }
        | Event::ProactiveTick { peer, .. }
        | Event::Quarantine { peer, .. } => (peer, 0),
        Event::Toggle { peer, seq, .. } => (peer, seq),
        Event::OfflineTimeout { peer, seq, .. } => (peer, seq),
    };
    (peer, kind_rank(event), seq)
}

/// Everything one logical shard owns mutably during the parallel local
/// phases, plus the task-local buffers merged back in shard order.
pub(in crate::world) struct ShardLane<'a> {
    /// This shard's window into the peer-table columns (may cover zero
    /// slots during the growth ramp). Carries the shard's base id.
    pub(in crate::world) peers: PeerView<'a>,
    /// This shard's slice of the global online-position table.
    pub(in crate::world) pos: &'a mut [u32],
    /// Online peers of this shard (order is part of the semantics: pool
    /// sampling indexes into it).
    pub(in crate::world) online: &'a mut Vec<PeerId>,
    /// This shard's timing-wheel segment.
    pub(in crate::world) wheel: &'a mut HierarchicalWheel<Event>,
    /// Peers of this shard awaiting activation.
    pub(in crate::world) pending: &'a mut Vec<PeerId>,
    /// This shard's RNG stream.
    pub(in crate::world) rng: &'a mut SimRng,
    /// Whether the world records events.
    pub(in crate::world) events_on: bool,
    /// Whether a survival estimator is attached (strategy `LearnedAge`);
    /// gates the death-observation pushes so every other strategy pays
    /// nothing.
    pub(in crate::world) estimates_on: bool,
    /// Events emitted by this shard's handlers (merged in shard order).
    pub(in crate::world) events: Vec<WorldEvent>,
    /// Completed-lifetime observations from this shard's deaths, drained
    /// into the global survival model in shard order after the phase.
    pub(in crate::world) obs: &'a mut Vec<DeathRecord>,
    /// Per-domain outage end rounds (empty when failure domains are
    /// off; `end > round` means the domain is down this round).
    pub(in crate::world) outages: &'a [u64],
    /// Domains whose outage starts this round (their online peers are
    /// forced offline before the wheel fires).
    pub(in crate::world) outage_starts: &'a [u16],
    /// Cross-shard effects of this shard's deaths/timeouts, delivered
    /// in the next stage.
    pub(in crate::world) out: Vec<Msg>,
    /// Peers that departed this round (slot recycled in place).
    pub(in crate::world) departed: Vec<PeerId>,
    /// Metric counters bumped by this shard's handlers.
    pub(in crate::world) delta: MetricsDelta,
    /// Census movement between age categories.
    pub(in crate::world) census_delta: [i64; AgeCategory::COUNT],
}

impl ShardLane<'_> {
    /// Shard-local entry to the shared online-index invariant.
    pub(in crate::world) fn set_online(&mut self, id: PeerId, online: bool) {
        let base = self.peers.base;
        self.peers
            .update_online(id, self.online, self.pos, base, online);
    }

    /// Shard-local entry to the shared pending-queue invariant.
    pub(in crate::world) fn enqueue(&mut self, id: PeerId) {
        self.peers.enqueue_pending(id, self.pending);
    }

    #[inline]
    pub(in crate::world) fn emit(&mut self, event: WorldEvent) {
        if self.events_on {
            self.events.push(event);
        }
    }

    /// Runs the shard-local half of the event phase for `round`: fires
    /// the wheel segment, sorts the due events, and handles every kind
    /// shard-locally. Deaths and offline timeouts tear down their own
    /// slot here (hop 1) and address the cross-shard half of the
    /// teardown as [`Msg`]s for the deliver stage (hop 2).
    pub(in crate::world) fn run_local_events(
        &mut self,
        round: u64,
        cfg: &SimConfig,
        samplers: &[SessionSampler],
        buf: &mut Vec<Event>,
    ) {
        // Regional outages starting this round disconnect their domains
        // first, so the due events below already see the outage state
        // (superseded toggles and timeouts fail their sequence check).
        if !self.outage_starts.is_empty() {
            self.force_domain_outages(round, cfg);
        }
        buf.clear();
        self.wheel.advance(Round(round), |e| buf.push(e));
        buf.sort_unstable_by_key(event_sort_key);
        for event in buf.drain(..) {
            match event {
                Event::Toggle { peer, epoch, seq } => {
                    if self.peers.epoch(peer) == epoch && self.peers.session_seq(peer) == seq {
                        self.process_toggle(peer, round, cfg, samplers);
                    }
                }
                Event::CatAdvance { peer, epoch } => {
                    if self.peers.epoch(peer) == epoch {
                        self.process_cat_advance(peer, round);
                    }
                }
                Event::ProactiveTick { peer, epoch } => {
                    if self.peers.epoch(peer) == epoch {
                        self.process_proactive_tick(peer, round, cfg);
                    }
                }
                Event::Death { peer, epoch } => {
                    if self.peers.epoch(peer) == epoch {
                        self.process_death_local(peer, round, cfg, samplers);
                    }
                }
                Event::OfflineTimeout { peer, epoch, seq } => {
                    if self.peers.epoch(peer) == epoch
                        && self.peers.session_seq(peer) == seq
                        && !self.peers.online(peer)
                    {
                        self.process_timeout_local(peer);
                    }
                }
                Event::Quarantine { peer, epoch } => {
                    if self.peers.epoch(peer) == epoch && self.peers.quarantined(peer) {
                        self.process_quarantine_local(peer);
                    }
                }
            }
        }
    }

    /// The end round of the outage covering `id`'s domain, if one is
    /// active (`None` in domain-free runs — the slice is empty then).
    pub(in crate::world) fn outage_end(&self, id: PeerId, round: u64) -> Option<u64> {
        if self.outages.is_empty() {
            return None;
        }
        let end = self.outages[self.peers.domain(id) as usize];
        (end > round).then_some(end)
    }

    /// Disconnects every online peer of the domains whose outage starts
    /// this round: the open session is closed (time banked), the armed
    /// flip is superseded by the sequence bump, the return flip is
    /// scheduled for the outage's end, and the offline-timeout timer is
    /// armed — so a long outage writes the domain's hosted blocks off
    /// through the normal two-hop teardown.
    fn force_domain_outages(&mut self, round: u64, cfg: &SimConfig) {
        let base = self.peers.base;
        for i in 0..self.peers.slots() {
            let id = base + i as PeerId;
            let dom = self.peers.domain(id);
            if !self.outage_starts.contains(&dom)
                || !self.peers.online(id)
                || self.peers.observer(id).is_some()
            {
                continue;
            }
            self.delta.outage_disconnects += 1;
            let banked = round.saturating_sub(self.peers.last_transition(id));
            self.peers
                .set_online_accum(id, self.peers.online_accum(id) + banked);
            self.peers.bump_session_seq(id);
            self.peers.set_last_transition(id, round);
            self.set_online(id, false);
            let (epoch, seq) = (self.peers.epoch(id), self.peers.session_seq(id));
            let end = self.outages[dom as usize];
            self.wheel.schedule(
                Round(end),
                Event::Toggle {
                    peer: id,
                    epoch,
                    seq,
                },
            );
            if cfg.offline_timeout > 0 {
                self.wheel.schedule(
                    Round(round + cfg.offline_timeout),
                    Event::OfflineTimeout {
                        peer: id,
                        epoch,
                        seq,
                    },
                );
            }
        }
    }

    /// Session flip (§3.2 availability process). Strictly shard-local:
    /// the peer's own state, this shard's online index and wheel.
    fn process_toggle(
        &mut self,
        id: PeerId,
        round: u64,
        cfg: &SimConfig,
        samplers: &[SessionSampler],
    ) {
        let going_online = !self.peers.online(id);
        if going_online {
            if let Some(end) = self.outage_end(id, round) {
                // The domain is down: the reconnection is deferred to
                // the outage's end, same sequence (the flip is delayed,
                // not superseded). No draws — the outage schedule is a
                // pure function of the seed, so this stays identical at
                // every shard/steal configuration.
                let (epoch, seq) = (self.peers.epoch(id), self.peers.session_seq(id));
                self.wheel.schedule(
                    Round(end),
                    Event::Toggle {
                        peer: id,
                        epoch,
                        seq,
                    },
                );
                return;
            }
        }
        self.delta.session_toggles += 1;
        self.peers.bump_session_seq(id);
        if !going_online {
            // Closing an online session: bank it in the ledger.
            let banked = round.saturating_sub(self.peers.last_transition(id));
            self.peers
                .set_online_accum(id, self.peers.online_accum(id) + banked);
        }
        self.peers.set_last_transition(id, round);
        self.set_online(id, going_online);

        // Schedule the next transition. A permanently-online peer only
        // ever reaches this flip when an outage cut its session short;
        // it stays up for good again, so no further flip is armed.
        let (epoch, seq) = (self.peers.epoch(id), self.peers.session_seq(id));
        let sampler = samplers[self.peers.profile(id) as usize];
        if !(going_online && sampler.always_online()) {
            let dur = if going_online {
                sampler.online_duration(self.rng)
            } else {
                sampler.offline_duration(self.rng)
            };
            self.wheel.schedule(
                Round(round + dur),
                Event::Toggle {
                    peer: id,
                    epoch,
                    seq,
                },
            );
        }

        if going_online {
            // A peer that reconnects resumes its own pending work.
            let threshold_policy = !matches!(
                cfg.maintenance,
                crate::config::MaintenancePolicy::Proactive { .. }
            );
            let needs_join = !self.peers.fully_joined(id);
            let threshold = self.peers.threshold(id) as u32;
            let needs_repair = (0..self.peers.archives_per_peer()).any(|a| {
                self.peers.repairing(id, a)
                    || (threshold_policy
                        && self.peers.joined(id, a)
                        && self.peers.present(id, a) < threshold)
            });
            if needs_join || needs_repair {
                self.enqueue(id);
            }
        } else if cfg.offline_timeout > 0 {
            // Arm the write-off timer for this offline run.
            let seq = self.peers.session_seq(id);
            self.wheel.schedule(
                Round(round + cfg.offline_timeout),
                Event::OfflineTimeout {
                    peer: id,
                    epoch,
                    seq,
                },
            );
        }
    }

    /// Age-category boundary crossing: census delta + next boundary.
    fn process_cat_advance(&mut self, id: PeerId, round: u64) {
        debug_assert!(self.peers.observer(id).is_none());
        let age = self.peers.age_at(id, round);
        let (epoch, birth) = (self.peers.epoch(id), self.peers.birth(id));
        let new_cat = AgeCategory::of_age(age);
        let prev_cat = AgeCategory::of_age(age - 1);
        debug_assert_ne!(new_cat, prev_cat, "boundary event off by one");
        self.census_delta[prev_cat.index()] -= 1;
        self.census_delta[new_cat.index()] += 1;
        if let Some((_, next_age)) = new_cat.next_boundary() {
            self.wheel.schedule(
                Round(birth + next_age),
                Event::CatAdvance { peer: id, epoch },
            );
        }
    }

    /// Proactive-maintenance tick: reschedule and wake the owner.
    fn process_proactive_tick(&mut self, id: PeerId, round: u64, cfg: &SimConfig) {
        if let crate::config::MaintenancePolicy::Proactive { tick_rounds } = cfg.maintenance {
            let epoch = self.peers.epoch(id);
            self.wheel.schedule(
                Round(round + tick_rounds),
                Event::ProactiveTick { peer: id, epoch },
            );
            if self.peers.online(id) {
                self.enqueue(id);
            }
        }
    }
}

/// Builds a fresh per-shard timing wheel.
pub(in crate::world) fn new_shard_wheel() -> HierarchicalWheel<Event> {
    HierarchicalWheel::new(SHARD_WHEEL_INNER, SHARD_WHEEL_OUTER)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_a_pure_function_of_capacity() {
        let a = ShardLayout::for_capacity(25_000, 64);
        let b = ShardLayout::for_capacity(25_000, 64);
        assert_eq!(a, b);
        assert!(a.count <= MAX_SHARDS);
    }

    #[test]
    fn small_capacities_collapse_to_one_shard() {
        for cap in [1, 2, 63, 64, 100] {
            let l = ShardLayout::for_capacity(cap, 64);
            assert_eq!(l.count, 1, "capacity {cap}");
            assert!(l.shard_size >= cap);
        }
    }

    #[test]
    fn large_capacities_reach_past_the_old_64_shard_ceiling() {
        let l = ShardLayout::for_capacity(100_000, 64);
        assert!(l.count > 64, "100k slots must split past 64 shards");
        assert_eq!(ShardLayout::for_capacity(1_000_000, 64).count, MAX_SHARDS);
    }

    #[test]
    fn shard_slots_sets_the_granularity() {
        assert_eq!(ShardLayout::for_capacity(4096, 64).count, 64);
        assert_eq!(ShardLayout::for_capacity(4096, 256).count, 16);
        assert_eq!(ShardLayout::for_capacity(4096, 8).count, 512);
        // Degenerate slot sizes clamp instead of dividing by zero.
        assert_eq!(ShardLayout::for_capacity(4096, 0).count, MAX_SHARDS);
    }

    #[test]
    fn ranges_are_contiguous_and_cover_every_slot() {
        for slots in [8usize, 64, 200] {
            for cap in [65, 200, 1000, 4096, 100_000, 1_000_000] {
                let l = ShardLayout::for_capacity(cap, slots);
                assert!(l.count >= 1 && l.count <= MAX_SHARDS);
                assert!(l.shard_size * l.count >= cap, "capacity {cap} uncovered");
                let mut prev = l.shard_of(0);
                assert_eq!(prev, 0);
                for id in 1..cap as PeerId {
                    let s = l.shard_of(id);
                    assert!(s == prev || s == prev + 1, "gap at slot {id}");
                    prev = s;
                }
                assert_eq!(prev, l.count - 1, "last shard unused at {cap}");
            }
        }
    }

    #[test]
    fn shard_of_is_monotone_in_id() {
        let l = ShardLayout::for_capacity(10_000, 64);
        for id in 1..10_000u32 {
            assert!(l.shard_of(id) >= l.shard_of(id - 1));
        }
    }

    #[test]
    fn scratch_generation_survives_tag_wrap() {
        let mut s = Scratch::default();
        let t1 = s.begin(8);
        s.mark[3] = t1;
        s.tag = u32::MAX; // force the wrap on the next begin
        let t2 = s.begin(8);
        assert_eq!(t2, 1);
        assert!(s.mark.iter().all(|&m| m != t2), "stale mark leaked");
    }
}
