//! The backup pipeline: archive bytes → encrypted, erasure-coded,
//! placed blocks (paper §2.2.1).

use peerback_erasure::{ErasureError, ReedSolomon};

use crate::archive::Archive;
use crate::crypt::Cipher;
use crate::master::{ArchiveDescriptor, BlockPlacement};

/// A block ready for upload to one partner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedBlock {
    /// Shard index within the code word.
    pub shard_index: u32,
    /// Destination partner.
    pub partner: u64,
    /// Shard payload.
    pub bytes: Vec<u8>,
}

/// The output of backing up one archive: blocks to upload plus the
/// descriptor to record in the master block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPlan {
    /// One block per partner, in shard order.
    pub blocks: Vec<PlacedBlock>,
    /// The master-block entry for this archive.
    pub descriptor: ArchiveDescriptor,
}

/// Encodes archives into placed blocks.
#[derive(Debug)]
pub struct BackupPipeline<C: Cipher> {
    rs: ReedSolomon,
    cipher: C,
    session_key_id: u64,
}

impl<C: Cipher> BackupPipeline<C> {
    /// Creates a pipeline for a codec geometry and cipher.
    pub fn new(rs: ReedSolomon, cipher: C, session_key_id: u64) -> Self {
        BackupPipeline {
            rs,
            cipher,
            session_key_id,
        }
    }

    /// The codec.
    pub fn codec(&self) -> &ReedSolomon {
        &self.rs
    }

    /// Backs up `archive` onto `partners` (one block each, shard order).
    ///
    /// # Errors
    ///
    /// [`ErasureError::WrongShardCount`] if `partners.len() != n`, or any
    /// codec validation error.
    pub fn backup(
        &self,
        archive: &Archive,
        partners: &[u64],
    ) -> Result<PlacementPlan, ErasureError> {
        let n = self.rs.total_shards();
        if partners.len() != n {
            return Err(ErasureError::WrongShardCount {
                expected: n,
                actual: partners.len(),
            });
        }
        let plaintext = archive.to_bytes();
        let ciphertext = self.cipher.encrypt(&plaintext);
        let (data_blocks, payload_len) =
            Archive::split_into_blocks(&ciphertext, self.rs.data_shards());
        let parity = self.rs.encode(&data_blocks)?;

        let mut blocks = Vec::with_capacity(n);
        for (i, bytes) in data_blocks.into_iter().chain(parity).enumerate() {
            blocks.push(PlacedBlock {
                shard_index: i as u32,
                partner: partners[i],
                bytes,
            });
        }
        let placements = blocks
            .iter()
            .map(|b| BlockPlacement {
                shard_index: b.shard_index,
                partner: b.partner,
            })
            .collect();
        Ok(PlacementPlan {
            descriptor: ArchiveDescriptor {
                archive_id: archive.id,
                payload_len,
                k: self.rs.data_shards() as u16,
                m: self.rs.parity_shards() as u16,
                is_metadata: archive.is_metadata,
                session_key: self.session_key_id.to_le_bytes().to_vec(),
                placements,
            },
            blocks,
        })
    }

    /// Regenerates the blocks at `missing` shard indices from any `k`
    /// surviving blocks and assigns them to `new_partners` — the repair
    /// operation of §2.2.3.
    ///
    /// # Errors
    ///
    /// Codec validation errors; notably
    /// [`ErasureError::NotEnoughShards`] when fewer than `k` survive.
    ///
    /// # Panics
    ///
    /// Panics if `missing` and `new_partners` lengths differ.
    pub fn regenerate(
        &self,
        survivors: &[(usize, Vec<u8>)],
        missing: &[usize],
        new_partners: &[u64],
    ) -> Result<Vec<PlacedBlock>, ErasureError> {
        assert_eq!(
            missing.len(),
            new_partners.len(),
            "one new partner per regenerated block"
        );
        let shard_len = survivors.first().map_or(0, |(_, b)| b.len());
        let regenerated = self.rs.reconstruct_shards(survivors, shard_len, missing)?;
        Ok(regenerated
            .into_iter()
            .zip(missing)
            .zip(new_partners)
            .map(|((bytes, &shard_index), &partner)| PlacedBlock {
                shard_index: shard_index as u32,
                partner,
                bytes,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::Entry;
    use crate::crypt::{NoCipher, XorKeystream};
    use bytes::Bytes;

    fn archive() -> Archive {
        Archive::from_entries(
            3,
            false,
            vec![
                Entry {
                    name: "a.txt".into(),
                    data: Bytes::from(vec![7u8; 100]),
                },
                Entry {
                    name: "b.bin".into(),
                    data: Bytes::from((0..=255u8).collect::<Vec<u8>>()),
                },
            ],
        )
    }

    #[test]
    fn backup_produces_one_block_per_partner() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let pipeline = BackupPipeline::new(rs, NoCipher, 1);
        let partners: Vec<u64> = (100..106).collect();
        let plan = pipeline.backup(&archive(), &partners).unwrap();
        assert_eq!(plan.blocks.len(), 6);
        for (i, b) in plan.blocks.iter().enumerate() {
            assert_eq!(b.shard_index, i as u32);
            assert_eq!(b.partner, partners[i]);
        }
        assert_eq!(plan.descriptor.archive_id, 3);
        assert_eq!(plan.descriptor.k, 4);
        assert_eq!(plan.descriptor.m, 2);
        assert_eq!(plan.descriptor.placements.len(), 6);
        // All blocks the same length.
        let len = plan.blocks[0].bytes.len();
        assert!(plan.blocks.iter().all(|b| b.bytes.len() == len));
    }

    #[test]
    fn wrong_partner_count_is_rejected() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let pipeline = BackupPipeline::new(rs, NoCipher, 1);
        let partners: Vec<u64> = (0..5).collect();
        assert!(matches!(
            pipeline.backup(&archive(), &partners),
            Err(ErasureError::WrongShardCount {
                expected: 6,
                actual: 5
            })
        ));
    }

    #[test]
    fn encryption_changes_blocks_but_not_structure() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let partners: Vec<u64> = (0..6).collect();
        let plain = BackupPipeline::new(rs.clone(), NoCipher, 1)
            .backup(&archive(), &partners)
            .unwrap();
        let encrypted = BackupPipeline::new(rs, XorKeystream::new(55), 1)
            .backup(&archive(), &partners)
            .unwrap();
        assert_ne!(plain.blocks[0].bytes, encrypted.blocks[0].bytes);
        assert_eq!(
            plain.descriptor.payload_len,
            encrypted.descriptor.payload_len
        );
    }

    #[test]
    fn regenerate_matches_original_blocks() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let pipeline = BackupPipeline::new(rs, NoCipher, 1);
        let partners: Vec<u64> = (0..7).collect();
        let plan = pipeline.backup(&archive(), &partners).unwrap();

        // Lose shards 2 and 5; repair from shards {0, 1, 3, 6}.
        let survivors: Vec<(usize, Vec<u8>)> = [0usize, 1, 3, 6]
            .iter()
            .map(|&i| (i, plan.blocks[i].bytes.clone()))
            .collect();
        let repaired = pipeline
            .regenerate(&survivors, &[2, 5], &[900, 901])
            .unwrap();
        assert_eq!(repaired[0].bytes, plan.blocks[2].bytes);
        assert_eq!(repaired[0].partner, 900);
        assert_eq!(repaired[1].bytes, plan.blocks[5].bytes);
        assert_eq!(repaired[1].partner, 901);
    }

    #[test]
    fn regenerate_with_too_few_survivors_fails() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let pipeline = BackupPipeline::new(rs, NoCipher, 1);
        let partners: Vec<u64> = (0..7).collect();
        let plan = pipeline.backup(&archive(), &partners).unwrap();
        let survivors: Vec<(usize, Vec<u8>)> = [0usize, 1]
            .iter()
            .map(|&i| (i, plan.blocks[i].bytes.clone()))
            .collect();
        assert!(matches!(
            pipeline.regenerate(&survivors, &[2], &[900]),
            Err(ErasureError::NotEnoughShards { .. })
        ));
    }
}
