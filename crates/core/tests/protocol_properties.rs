//! Property-based tests of the protocol kernels: the acceptance
//! function's §3.2 contract, selection-strategy invariants, and
//! config-fuzzed mini-simulations that must never panic.

use peerback_core::{
    acceptance_probability, run_simulation, Candidate, MaintenancePolicy, SelectionStrategy,
    SimConfig,
};
use peerback_sim::sim_rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn acceptance_respects_all_three_paper_properties(
        own in 0u64..10_000,
        cand in 0u64..10_000,
        clamp in 1u64..5_000,
    ) {
        let p = acceptance_probability(own, cand, clamp);
        // 1. "The result is never zero … its minimum is 1/L."
        prop_assert!(p >= 1.0 / clamp as f64 - 1e-12);
        prop_assert!(p <= 1.0);
        // 2. "The result is always one if peer p2 is older than peer p1."
        if cand >= own {
            prop_assert_eq!(p, 1.0);
        }
        // 3. Asymmetry below the clamp: if both under L and different,
        //    the two directions disagree.
        let q = acceptance_probability(cand, own, clamp);
        if own < clamp && cand < clamp && own != cand {
            prop_assert_ne!(p, q, "asymmetry lost for {} vs {}", own, cand);
        }
        // Beyond the clamp both directions saturate to 1.
        if own >= clamp && cand >= clamp {
            prop_assert_eq!(p, 1.0);
            prop_assert_eq!(q, 1.0);
        }
    }

    #[test]
    fn acceptance_monotone_in_candidate_age(
        own in 0u64..5_000,
        cand in 0u64..4_999,
        clamp in 2u64..5_000,
    ) {
        let younger = acceptance_probability(own, cand, clamp);
        let older = acceptance_probability(own, cand + 1, clamp);
        prop_assert!(older >= younger - 1e-12);
    }

    #[test]
    fn selection_preserves_pool_membership_and_size(
        seed in any::<u64>(),
        len in 0usize..60,
        d in 0usize..80,
        strategy_idx in 0usize..SelectionStrategy::ALL.len(),
    ) {
        let strategy = SelectionStrategy::ALL[strategy_idx];
        let pool: Vec<Candidate> = (0..len as u32)
            .map(|i| Candidate {
                id: i,
                age: (i as u64).wrapping_mul(seed % 97),
                uptime: ((i as f64) * 0.137).fract(),
                estimated_remaining: (i as u64).wrapping_mul(17) % 5_000,
                true_remaining: (i as u64).wrapping_mul(31) % 10_000,
            })
            .collect();
        let mut chosen = pool.clone();
        let mut rng = sim_rng(seed);
        strategy.choose(&mut rng, &mut chosen, d);
        // Size is min(d, len); every pick came from the pool, unique ids.
        prop_assert_eq!(chosen.len(), d.min(len));
        let mut ids: Vec<u32> = chosen.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), chosen.len(), "duplicate picks");
        for c in &chosen {
            prop_assert!(pool.iter().any(|p| p.id == c.id));
        }
    }
}

/// Config-fuzz: random (valid) configurations simulate a few hundred
/// rounds without panicking, and their accounting stays conserved.
#[test]
fn fuzzed_configurations_never_panic() {
    let mut rng_seed = 0x5eed_0001u64;
    for case in 0..25 {
        rng_seed = rng_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let pick = |range: std::ops::Range<u64>, salt: u64| -> u64 {
            let x = rng_seed.wrapping_mul(salt | 1);
            range.start + (x >> 16) % (range.end - range.start)
        };

        let k = pick(2..12, 3) as u16;
        let m = pick(1..12, 5) as u16;
        let n = (k + m) as u32;
        let archives = pick(1..3, 7) as u16;
        let mut cfg = SimConfig::paper(pick(30..150, 11) as usize, pick(50..600, 13), rng_seed);
        cfg.k = k;
        cfg.m = m;
        cfg.archives_per_peer = archives;
        cfg.quota = n * archives as u32 + pick(0..64, 17) as u32;
        cfg.offline_timeout = pick(0..48, 19);
        cfg.availability_cycle = pick(2..72, 23) as f64;
        cfg.mutual_acceptance = pick(0..2, 29) == 0;
        cfg.acceptance_enabled = pick(0..2, 31) == 0;
        cfg.refresh_on_repair = pick(0..2, 37) == 0;
        cfg.strategy = SelectionStrategy::ALL[pick(0..5, 41) as usize];
        cfg.maintenance = match pick(0..3, 43) {
            0 => MaintenancePolicy::Reactive {
                threshold: k + pick(1..(m as u64 + 1), 47) as u16,
            },
            1 => MaintenancePolicy::Proactive {
                tick_rounds: pick(1..72, 53),
            },
            _ => MaintenancePolicy::Adaptive {
                base: k + m.max(2) / 2,
                floor_margin: 1,
                step: 1,
            },
        };
        if pick(0..2, 59) == 0 {
            cfg = cfg.with_paper_observers();
        }
        cfg.growth_rounds = pick(0..100, 61);
        cfg.validate()
            .unwrap_or_else(|e| panic!("case {case}: invalid fuzz config: {e}"));

        let peers = cfg.n_peers as u64;
        let rounds = cfg.rounds;
        let metrics = run_simulation(cfg);
        assert_eq!(metrics.rounds, rounds, "case {case} stopped early");
        // Census conservation holds in every sample after the ramp.
        for s in &metrics.samples {
            let total: u64 = s.census.iter().sum();
            assert!(total <= peers, "case {case}: census {total} > {peers}");
        }
    }
}
