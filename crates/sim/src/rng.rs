//! Seeded randomness with reproducible sub-streams.
//!
//! Every simulation is driven by one `u64` seed; per-purpose sub-seeds
//! (one per peer, one per experiment arm, …) are derived with SplitMix64
//! so that changing one consumer's draw pattern cannot perturb another's.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG used throughout the simulator: `SmallRng` (xoshiro256++),
/// chosen because availability toggling and pool sampling draw hundreds
/// of millions of variates per run and we need speed, not cryptographic
/// strength.
pub type SimRng = SmallRng;

/// Creates the simulation RNG for a seed.
pub fn sim_rng(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// Derives an independent sub-seed from `(seed, stream)` using the
/// SplitMix64 finalizer — the standard way to fan one seed out into many
/// decorrelated streams.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = sim_rng(42);
        let mut b = sim_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = sim_rng(42);
        let mut b = sim_rng(43);
        let same = (0..100)
            .filter(|_| a.gen::<u64>() == b.gen::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let s1 = derive_seed(7, 0);
        let s2 = derive_seed(7, 1);
        let s3 = derive_seed(8, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        // Deterministic across calls.
        assert_eq!(derive_seed(7, 0), s1);
    }

    #[test]
    fn derived_streams_decorrelate() {
        let mut a = sim_rng(derive_seed(1, 10));
        let mut b = sim_rng(derive_seed(1, 11));
        let same = (0..1000)
            .filter(|_| a.gen::<u64>() == b.gen::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}
