//! Recycled buffer pools for (near-)zero-allocation steady states.
//!
//! Round-based hot loops tend to rebuild the same scratch vectors every
//! round — inboxes, outboxes, event buffers, candidate pools — paying a
//! heap round-trip for memory whose size distribution is stationary.
//! [`BufPool`] is the small primitive behind the executor's *round
//! arenas*: a free list of cleared `Vec`s whose capacities are
//! high-water-marked by previous rounds, so a steady-state round reuses
//! yesterday's allocations instead of making new ones.
//!
//! Recycling is **observationally invisible**: a vector taken from the
//! pool is always empty, so the only difference from `Vec::new()` is
//! the retained capacity. The `recycle` switch turns the pool into a
//! pass-through (`take` returns fresh vectors, `put` drops) — the debug
//! knob the determinism tests use to prove no state leaks through the
//! arena between rounds.

/// A free list of cleared, capacity-retaining vectors.
#[derive(Debug, Clone)]
pub struct BufPool<T> {
    free: Vec<Vec<T>>,
    recycle: bool,
}

impl<T> Default for BufPool<T> {
    fn default() -> Self {
        BufPool::new()
    }
}

impl<T> BufPool<T> {
    /// An empty pool with recycling enabled.
    pub fn new() -> Self {
        BufPool {
            free: Vec::new(),
            recycle: true,
        }
    }

    /// Enables or disables recycling. Disabling drops the free list, so
    /// every subsequent [`BufPool::take`] allocates fresh — the debug
    /// mode for proving recycled and fresh buffers behave identically.
    pub fn set_recycle(&mut self, on: bool) {
        self.recycle = on;
        if !on {
            self.free.clear();
        }
    }

    /// Whether recycling is enabled.
    pub fn recycling(&self) -> bool {
        self.recycle
    }

    /// Takes an empty vector — recycled (with its old capacity) when
    /// one is available, freshly allocated otherwise.
    pub fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a vector to the pool. It is cleared here; with recycling
    /// off it is dropped instead.
    pub fn put(&mut self, mut v: Vec<T>) {
        if self.recycle {
            v.clear();
            self.free.push(v);
        }
    }

    /// Vectors currently parked in the free list.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

/// Takes the buffer stored in `slot`, leaving an empty one behind.
/// With `recycle` false a fresh vector is handed out instead, so the
/// caller sees `Vec::new()` semantics — the per-slot counterpart of
/// [`BufPool::take`] for arenas that keep one buffer per shard.
pub fn take_slot<T>(slot: &mut Vec<T>, recycle: bool) -> Vec<T> {
    if recycle {
        core::mem::take(slot)
    } else {
        Vec::new()
    }
}

/// Stores `buf` (cleared) back into `slot` for the next round; with
/// `recycle` false the buffer is dropped and the slot left empty.
pub fn put_slot<T>(slot: &mut Vec<T>, mut buf: Vec<T>, recycle: bool) {
    if recycle {
        buf.clear();
        *slot = buf;
    } else {
        *slot = Vec::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_cycles_capacity() {
        let mut pool: BufPool<u32> = BufPool::new();
        let mut v = pool.take();
        v.extend(0..100);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.idle(), 1);
        let v = pool.take();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), cap, "capacity must survive the cycle");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn disabled_pool_hands_out_fresh_vectors() {
        let mut pool: BufPool<u32> = BufPool::new();
        let mut v = pool.take();
        v.extend(0..100);
        pool.set_recycle(false);
        pool.put(v);
        assert_eq!(pool.idle(), 0, "disabled pool must not retain buffers");
        assert_eq!(pool.take().capacity(), 0);
    }

    #[test]
    fn slot_helpers_mirror_the_pool_semantics() {
        let mut slot: Vec<u32> = Vec::new();
        let mut buf = take_slot(&mut slot, true);
        buf.extend(0..64);
        let cap = buf.capacity();
        put_slot(&mut slot, buf, true);
        assert!(slot.is_empty());
        assert_eq!(slot.capacity(), cap);

        let buf = take_slot(&mut slot, false);
        assert_eq!(buf.capacity(), 0, "fresh mode must not reuse the slot");
        put_slot(&mut slot, vec![1, 2, 3], false);
        assert_eq!(slot.capacity(), 0, "fresh mode must drop returned buffers");
    }
}
