//! Recycled buffer pools for (near-)zero-allocation steady states.
//!
//! Round-based hot loops tend to rebuild the same scratch vectors every
//! round — inboxes, outboxes, event buffers, candidate pools — paying a
//! heap round-trip for memory whose size distribution is stationary.
//! [`BufPool`] is the small primitive behind the executor's *round
//! arenas*: a free list of cleared `Vec`s whose capacities are
//! high-water-marked by previous rounds, so a steady-state round reuses
//! yesterday's allocations instead of making new ones.
//!
//! Recycling is **observationally invisible**: a vector taken from the
//! pool is always empty, so the only difference from `Vec::new()` is
//! the retained capacity. The `recycle` switch turns the pool into a
//! pass-through (`take` returns fresh vectors, `put` drops) — the debug
//! knob the determinism tests use to prove no state leaks through the
//! arena between rounds.

/// A free list of cleared, capacity-retaining vectors.
#[derive(Debug, Clone)]
pub struct BufPool<T> {
    free: Vec<Vec<T>>,
    recycle: bool,
    /// Largest capacity ever returned to the pool. [`BufPool::take`]
    /// pre-grows smaller recycled buffers to this mark, so a pool whose
    /// buffers serve variable-sized fills (small repair pools, large
    /// join pools) converges — one growth per buffer — instead of
    /// re-growing a small buffer every time it draws a large fill.
    cap_mark: usize,
}

impl<T> Default for BufPool<T> {
    fn default() -> Self {
        BufPool::new()
    }
}

impl<T> BufPool<T> {
    /// An empty pool with recycling enabled.
    pub fn new() -> Self {
        BufPool {
            free: Vec::new(),
            recycle: true,
            cap_mark: 0,
        }
    }

    /// Enables or disables recycling. Disabling drops the free list, so
    /// every subsequent [`BufPool::take`] allocates fresh — the debug
    /// mode for proving recycled and fresh buffers behave identically.
    pub fn set_recycle(&mut self, on: bool) {
        self.recycle = on;
        if !on {
            self.free.clear();
            self.cap_mark = 0;
        }
    }

    /// Whether recycling is enabled.
    pub fn recycling(&self) -> bool {
        self.recycle
    }

    /// Takes an empty vector — recycled (pre-grown to the pool's
    /// high-water capacity) when one is available, freshly allocated
    /// otherwise.
    pub fn take(&mut self) -> Vec<T> {
        match self.free.pop() {
            Some(mut v) => {
                if v.capacity() < self.cap_mark {
                    v.reserve_exact(self.cap_mark);
                }
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns a vector to the pool. It is cleared here; with recycling
    /// off it is dropped instead.
    pub fn put(&mut self, mut v: Vec<T>) {
        if self.recycle {
            v.clear();
            self.cap_mark = self.cap_mark.max(v.capacity());
            self.free.push(v);
        }
    }

    /// Vectors currently parked in the free list.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

/// Reinterprets an **empty** vector's allocation as a vector of a
/// layout-identical element type.
///
/// The intended use is recycling the backing allocation of stage-task
/// vectors whose element type is parameterised by a borrow lifetime
/// (`Vec<Task<'round>>`): the arena stores the capacity between rounds
/// under a `'static` instantiation and each round re-types it for its
/// own borrows. No element values ever cross the boundary — the vector
/// is cleared here — only the raw capacity does.
///
/// # Panics
///
/// Panics if `A` and `B` differ in size or alignment (the two
/// instantiations of one lifetime-generic type never do).
pub fn retype_empty<A, B>(mut v: Vec<A>) -> Vec<B> {
    assert!(
        core::mem::size_of::<A>() == core::mem::size_of::<B>()
            && core::mem::align_of::<A>() == core::mem::align_of::<B>(),
        "retype_empty requires layout-identical element types"
    );
    v.clear();
    let cap = v.capacity();
    let ptr = v.as_mut_ptr();
    core::mem::forget(v);
    // SAFETY: the allocation came from Vec<A> via the global allocator
    // with capacity `cap`; `A` and `B` have identical size and
    // alignment (asserted above), so the array layouts match and the
    // same (ptr, cap) pair describes a valid Vec<B> allocation. Length
    // is zero, so no value of `A` is ever read as a `B`.
    #[allow(unsafe_code)]
    unsafe {
        Vec::from_raw_parts(ptr.cast::<B>(), 0, cap)
    }
}

/// Takes the buffer stored in `slot`, leaving an empty one behind.
/// With `recycle` false a fresh vector is handed out instead, so the
/// caller sees `Vec::new()` semantics — the per-slot counterpart of
/// [`BufPool::take`] for arenas that keep one buffer per shard.
pub fn take_slot<T>(slot: &mut Vec<T>, recycle: bool) -> Vec<T> {
    if recycle {
        core::mem::take(slot)
    } else {
        Vec::new()
    }
}

/// Stores `buf` (cleared) back into `slot` for the next round; with
/// `recycle` false the buffer is dropped and the slot left empty.
pub fn put_slot<T>(slot: &mut Vec<T>, mut buf: Vec<T>, recycle: bool) {
    if recycle {
        buf.clear();
        *slot = buf;
    } else {
        *slot = Vec::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retype_empty_preserves_capacity_across_layout_twins() {
        struct Borrowing<'a>(#[allow(dead_code)] Option<&'a mut u64>);
        let mut v: Vec<Borrowing<'static>> = Vec::with_capacity(32);
        let mut x = 7u64;
        let mut round: Vec<Borrowing<'_>> = retype_empty(v);
        round.push(Borrowing(Some(&mut x)));
        round.clear();
        let cap = round.capacity();
        assert!(cap >= 32);
        v = retype_empty(round);
        assert_eq!(v.capacity(), cap, "capacity must survive the round trip");
        assert!(v.is_empty());
    }

    #[test]
    fn take_put_cycles_capacity() {
        let mut pool: BufPool<u32> = BufPool::new();
        let mut v = pool.take();
        v.extend(0..100);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.idle(), 1);
        let v = pool.take();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), cap, "capacity must survive the cycle");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn disabled_pool_hands_out_fresh_vectors() {
        let mut pool: BufPool<u32> = BufPool::new();
        let mut v = pool.take();
        v.extend(0..100);
        pool.set_recycle(false);
        pool.put(v);
        assert_eq!(pool.idle(), 0, "disabled pool must not retain buffers");
        assert_eq!(pool.take().capacity(), 0);
    }

    #[test]
    fn slot_helpers_mirror_the_pool_semantics() {
        let mut slot: Vec<u32> = Vec::new();
        let mut buf = take_slot(&mut slot, true);
        buf.extend(0..64);
        let cap = buf.capacity();
        put_slot(&mut slot, buf, true);
        assert!(slot.is_empty());
        assert_eq!(slot.capacity(), cap);

        let buf = take_slot(&mut slot, false);
        assert_eq!(buf.capacity(), 0, "fresh mode must not reuse the slot");
        put_slot(&mut slot, vec![1, 2, 3], false);
        assert_eq!(slot.capacity(), 0, "fresh mode must drop returned buffers");
    }
}
