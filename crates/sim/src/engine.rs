//! The round-driving engine.

use rand::seq::SliceRandom;

use crate::clock::Round;
use crate::rng::{sim_rng, SimRng};

/// A simulated system driven by the [`Engine`].
///
/// The engine calls, once per round and in this order:
///
/// 1. [`round_start`](World::round_start) — process scheduled events
///    (departures, session toggles, arrivals).
/// 2. [`collect_actors`](World::collect_actors) — fill a buffer with the
///    ids of peers that want to act this round. The engine shuffles the
///    buffer (PeerSim's "order of peers is chosen randomly at each
///    round") and calls [`activate`](World::activate) for each id.
/// 3. [`round_end`](World::round_end) — metrics sampling and bookkeeping.
///
/// Restricting activation to peers that *want* to act is a pure
/// optimisation: idle peers execute no observable code in the paper's
/// protocol, so skipping them cannot change the outcome, while turning an
/// O(N · rounds) scan into an O(events) one.
pub trait World {
    /// Processes events scheduled for `round`.
    fn round_start(&mut self, round: Round, rng: &mut SimRng);

    /// Pushes the ids of peers that need activation into `buf` (the
    /// engine clears it first).
    fn collect_actors(&mut self, round: Round, buf: &mut Vec<usize>);

    /// Runs one peer's protocol step.
    fn activate(&mut self, round: Round, actor: usize, rng: &mut SimRng);

    /// Finishes the round (metrics, invariants).
    fn round_end(&mut self, round: Round, rng: &mut SimRng);
}

/// Summary of an [`Engine::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundReport {
    /// Rounds executed.
    pub rounds: u64,
    /// Total peer activations across all rounds.
    pub activations: u64,
}

/// Drives a [`World`] round by round, reproducibly from a seed.
#[derive(Debug)]
pub struct Engine {
    rng: SimRng,
    round: Round,
    actor_buf: Vec<usize>,
}

impl Engine {
    /// Creates an engine whose entire execution is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Engine {
            rng: sim_rng(seed),
            round: Round::ZERO,
            actor_buf: Vec::new(),
        }
    }

    /// The next round to execute.
    pub fn current_round(&self) -> Round {
        self.round
    }

    /// Mutable access to the engine RNG, for worlds that need setup draws
    /// from the same deterministic stream before round zero.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Executes exactly one round. Returns the number of activations.
    pub fn step<W: World>(&mut self, world: &mut W) -> u64 {
        let round = self.round;
        world.round_start(round, &mut self.rng);

        self.actor_buf.clear();
        world.collect_actors(round, &mut self.actor_buf);
        self.actor_buf.shuffle(&mut self.rng);
        // `take` so `world.activate` may re-enter `collect_actors` safely
        // on the next round without aliasing the buffer.
        let mut actors = core::mem::take(&mut self.actor_buf);
        for &actor in &actors {
            world.activate(round, actor, &mut self.rng);
        }
        let activations = actors.len() as u64;
        actors.clear();
        self.actor_buf = actors;

        world.round_end(round, &mut self.rng);
        self.round = round.next();
        activations
    }

    /// Runs `rounds` rounds.
    pub fn run<W: World>(&mut self, world: &mut W, rounds: u64) -> RoundReport {
        let mut report = RoundReport::default();
        for _ in 0..rounds {
            report.activations += self.step(world);
            report.rounds += 1;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records the exact call sequence it observes.
    #[derive(Default)]
    struct TraceWorld {
        trace: Vec<String>,
        actors_per_round: Vec<Vec<usize>>,
        activation_order: Vec<Vec<usize>>,
    }

    impl World for TraceWorld {
        fn round_start(&mut self, round: Round, _rng: &mut SimRng) {
            self.trace.push(format!("start:{round}"));
            self.activation_order.push(Vec::new());
        }

        fn collect_actors(&mut self, round: Round, buf: &mut Vec<usize>) {
            if let Some(actors) = self.actors_per_round.get(round.index() as usize) {
                buf.extend_from_slice(actors);
            }
        }

        fn activate(&mut self, round: Round, actor: usize, _rng: &mut SimRng) {
            self.trace.push(format!("act:{round}:{actor}"));
            self.activation_order.last_mut().unwrap().push(actor);
        }

        fn round_end(&mut self, round: Round, _rng: &mut SimRng) {
            self.trace.push(format!("end:{round}"));
        }
    }

    #[test]
    fn calls_follow_the_round_protocol() {
        let mut world = TraceWorld {
            actors_per_round: vec![vec![0], vec![], vec![1, 2]],
            ..Default::default()
        };
        let mut engine = Engine::new(1);
        let report = engine.run(&mut world, 3);
        assert_eq!(report.rounds, 3);
        assert_eq!(report.activations, 3);
        assert_eq!(engine.current_round(), Round(3));

        // Round 0: start, one activation, end. Round 1: start, end. …
        assert_eq!(world.trace[0], "start:r0");
        assert_eq!(world.trace[1], "act:r0:0");
        assert_eq!(world.trace[2], "end:r0");
        assert_eq!(world.trace[3], "start:r1");
        assert_eq!(world.trace[4], "end:r1");
        assert_eq!(world.trace[5], "start:r2");
        assert_eq!(world.trace[8], "end:r2");
    }

    #[test]
    fn same_seed_gives_identical_activation_orders() {
        let actors: Vec<Vec<usize>> = (0..50).map(|_| (0..20).collect()).collect();
        let run = |seed: u64| {
            let mut world = TraceWorld {
                actors_per_round: actors.clone(),
                ..Default::default()
            };
            Engine::new(seed).run(&mut world, 50);
            world.activation_order
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn activation_order_is_shuffled_within_a_round() {
        let mut world = TraceWorld {
            actors_per_round: vec![(0..100).collect()],
            ..Default::default()
        };
        Engine::new(3).run(&mut world, 1);
        let order = &world.activation_order[0];
        assert_eq!(order.len(), 100);
        // All actors appear exactly once…
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // …but not in submission order (overwhelmingly likely for n=100).
        assert_ne!(order, &(0..100).collect::<Vec<_>>());
    }
}
