//! The simulation clock.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A round number (the simulation's discrete clock).
///
/// In the paper's configuration one round is one hour, chosen so that a
/// worst-case repair (~77 minutes on 2009 DSL) fits roughly in a round;
/// the engine itself attaches no unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round(pub u64);

impl Round {
    /// Round zero.
    pub const ZERO: Round = Round(0);
    /// A round that never arrives (used for "never departs").
    pub const NEVER: Round = Round(u64::MAX);

    /// The raw round index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Rounds elapsed since `earlier` (saturating at zero).
    #[inline]
    pub fn since(self, earlier: Round) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The next round.
    #[inline]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Interprets the round index as whole days for reporting (24 rounds
    /// per day in the paper's configuration).
    #[inline]
    pub fn as_days(self) -> f64 {
        self.0 as f64 / 24.0
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl Add<u64> for Round {
    type Output = Round;
    #[inline]
    fn add(self, rhs: u64) -> Round {
        Round(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for Round {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub<Round> for Round {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Round) -> u64 {
        self.since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Round::NEVER + 5, Round::NEVER);
        assert_eq!(Round(3).since(Round(10)), 0);
        assert_eq!(Round(10) - Round(3), 7);
    }

    #[test]
    fn ordering_and_display() {
        assert!(Round(1) < Round(2));
        assert_eq!(Round(48).as_days(), 2.0);
        assert_eq!(Round(5).to_string(), "r5");
        assert_eq!(Round(7).next(), Round(8));
    }
}
