//! A deterministic work-stealing task executor with a persistent
//! worker pool.
//!
//! The sharded simulation (and the fabric's sharded replay) decomposes
//! each phase of a round into one **task per logical shard**. Tasks are
//! independent by construction — a task mutates only its own shard's
//! state — so they can run on any worker in any order, and the caller
//! merges the per-task results **in task-key order** afterwards. That
//! merge is what keeps same-seed runs bit-identical at every worker
//! count: scheduling decides *when* a task runs, never *what it
//! computes or where its output lands*.
//!
//! ## Scheduling
//!
//! Each worker owns a contiguous range of task indices (the same fixed
//! ownership the pre-stealing executor used) and shares a claim table.
//! A worker drains its own range front to back, then **steals**: it
//! scans the other ranges and claims unstarted tasks from their tails.
//! Claiming is one atomic flag swap per task — a unique winner however
//! many workers race for it — against a claim table the pool recycles
//! across stages (no per-dispatch slot vector). With `steal` disabled
//! the executor degrades to the fixed ownership model (a hot range then
//! idles the other workers — kept as a measurable baseline and a
//! fallback).
//!
//! ## The persistent pool
//!
//! [`WorkerPool`] keeps its threads alive for the lifetime of the
//! simulation, parked on a stage barrier. Dispatching a stage is an
//! **epoch bump** — publish the job, wake the sleepers, participate as
//! worker 0, wait for the barrier — not a `thread::scope` spawn, so a
//! steady-state round performs *zero* thread spawns however many stages
//! it runs. Single-worker stages bypass the pool entirely and run
//! inline on the caller. [`WorkerPool::dispatches`] counts the real
//! wake-ups, which the bench layer reports as
//! `stage_dispatches_per_round`.
//!
//! The free functions [`run_tasks`] / [`run_tasks_with`] remain as the
//! pool-less (scoped-spawn) form for one-shot callers and tests.
//!
//! ## Testing interleavings
//!
//! [`run_tasks_fuzzed`] executes the same task set sequentially in a
//! seeded random order. Because tasks share no mutable state, any
//! parallel interleaving is observationally equivalent to *some*
//! sequential permutation — so driving random permutations through the
//! full pipeline and asserting unchanged results is an effective (and
//! deterministic) test of the independence contract.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use rand::Rng;

use crate::rng::sim_rng;

/// The claim table: one flag per task, flipped exactly once. A claim is
/// a single relaxed swap — atomicity alone guarantees a unique winner,
/// and the stage's end-of-dispatch barrier publishes every task's
/// results to the caller. The pool keeps one table for the life of the
/// run (under the dispatch gate), so the steady state resets flags in
/// place instead of allocating a slot vector per stage.
#[derive(Default)]
struct ClaimTable {
    flags: Vec<AtomicBool>,
}

impl ClaimTable {
    /// A fresh table of `len` unclaimed flags.
    fn with_len(len: usize) -> Self {
        let mut table = ClaimTable::default();
        table.reset(len);
        table
    }

    /// Resets to `len` unclaimed flags, reusing the allocation.
    fn reset(&mut self, len: usize) {
        self.flags.clear();
        self.flags.resize_with(len, AtomicBool::default);
    }

    /// True exactly once per index per stage.
    fn claim(&self, i: usize) -> bool {
        !self.flags[i].swap(true, Ordering::Relaxed)
    }
}

/// A thread-shareable base pointer to a `&mut` slice of per-task (or
/// per-worker) state. Exclusive access to an element is granted by the
/// execution protocol — the claim table for task states, the worker
/// index for worker scratch — never by the type system; see the
/// `# Safety` contract on [`TaskBase::get`].
struct TaskBase<S> {
    ptr: *mut S,
    len: usize,
}

#[allow(unsafe_code)]
// SAFETY: a TaskBase only ever yields access to disjoint elements, each
// claimed by (and then mutated on) one thread at a time; `S: Send`
// makes that hand-off across threads sound.
unsafe impl<S: Send> Send for TaskBase<S> {}
#[allow(unsafe_code)]
// SAFETY: as for Send — a shared `&TaskBase` grants `&mut` only to
// elements the calling worker holds the unique claim on.
unsafe impl<S: Send> Sync for TaskBase<S> {}

impl<S> TaskBase<S> {
    fn new(states: &mut [S]) -> Self {
        TaskBase {
            ptr: states.as_mut_ptr(),
            len: states.len(),
        }
    }

    /// Exclusive access to element `i`.
    ///
    /// # Safety
    ///
    /// The caller must hold the unique claim on `i` for the duration of
    /// the returned borrow (no other worker may reach `i` in this
    /// stage), and the slice behind the base must outlive the borrow —
    /// both are upheld by the claim-table/worker-index protocol plus
    /// the stage barrier.
    // `&self -> &mut S` is intentional: `TaskBase` is a shared handle
    // (like a cell) and the claim table guarantees at most one worker
    // ever reaches a given `i` per stage, so the borrows never alias.
    #[allow(unsafe_code, clippy::mut_from_ref)]
    unsafe fn get(&self, i: usize) -> &mut S {
        debug_assert!(i < self.len, "task index out of bounds");
        // SAFETY: `i` is in bounds and exclusively claimed per the
        // function contract.
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// The contiguous task range initially owned by worker `w` of `workers`.
fn own_range(len: usize, workers: usize, w: usize) -> (usize, usize) {
    let per = len.div_ceil(workers);
    let start = (w * per).min(len);
    (start, (start + per).min(len))
}

/// The claim-drain loop one worker runs over a stage: own range front
/// to back, then (optionally) steal the other ranges from their tails,
/// nearest victim first.
fn drain_worker<S>(
    claims: &ClaimTable,
    states: &TaskBase<S>,
    len: usize,
    workers: usize,
    w: usize,
    steal: bool,
    mut f: impl FnMut(usize, &mut S),
) {
    let (start, end) = own_range(len, workers, w);
    for i in start..end {
        if claims.claim(i) {
            // SAFETY: the claim succeeded, so this worker is the only
            // one to ever reach element `i` this stage.
            #[allow(unsafe_code)]
            f(i, unsafe { states.get(i) });
        }
    }
    if !steal {
        return;
    }
    for step in 1..workers {
        let victim = (w + step) % workers;
        let (vs, ve) = own_range(len, workers, victim);
        for i in (vs..ve).rev() {
            if claims.claim(i) {
                // SAFETY: as above — the unique claim on `i` was just
                // won by this worker.
                #[allow(unsafe_code)]
                f(i, unsafe { states.get(i) });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The persistent pool.

/// A stage job, lifetime-erased so parked threads (whose loop cannot
/// name the caller's stack lifetime) can run it. Soundness is purely a
/// matter of the barrier protocol; see the `SAFETY` comment at the one
/// erasure site in [`WorkerPool::dispatch`].
type Job = &'static (dyn Fn(usize) + Sync);

/// Barrier state shared between the dispatching caller and the parked
/// workers.
struct PoolState {
    /// Bumped once per dispatched stage; workers wake on a change.
    epoch: u64,
    /// The published job for the current epoch.
    job: Option<Job>,
    /// Worker indices `< width` run the job and check in; helpers
    /// beyond the width skip the epoch entirely (no job access, no
    /// check-in), so narrow stages on a wide pool don't barrier on
    /// every parked thread.
    width: usize,
    /// Participating helpers (`width − 1`) that have not yet checked
    /// in for this epoch.
    remaining: usize,
    /// First panic payload raised by a helper's share of the job
    /// (resumed on the dispatching caller).
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
    /// Tells the helpers to exit their loop.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Wakes helpers on a new epoch (or shutdown).
    work: Condvar,
    /// Wakes the dispatching caller once every helper checked in.
    done: Condvar,
}

/// A persistent, parked worker pool for stage dispatch.
///
/// `WorkerPool::new(w)` spawns `w − 1` helper threads (the dispatching
/// caller itself acts as worker 0), so a pool of width 1 owns no
/// threads at all and every dispatch runs inline. Threads park on a
/// condition variable between stages and are joined on drop.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes whole dispatches: the barrier protocol (epoch, job,
    /// remaining) supports exactly one stage in flight, and the erased
    /// job reference must stay alive until *its own* barrier clears —
    /// a second concurrent dispatcher would corrupt both. Held across
    /// the entire dispatch; a concurrent caller simply waits its turn.
    /// The guarded value is the recycled claim table — one stage in
    /// flight means one table suffices, and resetting it in place keeps
    /// the steady-state dispatch path allocation-free.
    gate: Mutex<ClaimTable>,
    /// Pool wake-ups performed (stages that actually used ≥2 workers).
    dispatches: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("width", &self.width())
            .field("dispatches", &self.dispatches())
            .finish()
    }
}

impl WorkerPool {
    /// Builds a pool of total width `workers` (including the caller):
    /// `workers.saturating_sub(1)` parked helper threads.
    pub fn new(workers: usize) -> Self {
        let helpers = workers.saturating_sub(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                width: 0,
                remaining: 0,
                panic_payload: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..helpers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("peerback-worker-{}", i + 1))
                    .spawn(move || helper_loop(&shared, i + 1))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            gate: Mutex::new(ClaimTable::default()),
            dispatches: AtomicU64::new(0),
        }
    }

    /// Total parallel width (helper threads + the dispatching caller).
    pub fn width(&self) -> usize {
        self.handles.len() + 1
    }

    /// Stage dispatches that woke the pool so far (inline single-worker
    /// stages are not counted — they cost no wake-up).
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    /// Claims the dispatch gate (serializing whole stages) and hands
    /// back the recycled claim table, reset to `len` unclaimed flags.
    /// Poisoning is ignored: a panicked dispatch restores the barrier
    /// invariants (remaining == 0, job cleared) before unwinding
    /// through the guard, so the pool stays usable.
    fn claim_gate(&self, len: usize) -> std::sync::MutexGuard<'_, ClaimTable> {
        let mut table = self
            .gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        table.reset(len);
        table
    }

    /// Publishes `f` as the current stage, wakes the helpers, runs the
    /// caller's share as worker 0 and waits for every helper to check
    /// in. Panics in any worker propagate to the caller after the
    /// barrier completes (so the job never dangles). The caller must
    /// hold the dispatch gate (via [`WorkerPool::claim_gate`]) for the
    /// whole call — concurrent dispatchers serialize there, blocking
    /// until the in-flight stage's barrier clears.
    fn dispatch(&self, width: usize, f: &(dyn Fn(usize) + Sync)) {
        debug_assert!(width >= 2, "width-1 stages run inline");
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        // SAFETY-ADJACENT LIFETIME ERASURE (no unsafe keyword, but the
        // contract matters): `job` borrows the caller's stack frame.
        // The erased reference is only ever dereferenced by helper
        // threads between the epoch bump below and their `remaining`
        // check-in, and this function does not return until
        // `remaining == 0` — so the referent strictly outlives every
        // use. The erasure itself is a transmute of lifetimes only.
        #[allow(unsafe_code)]
        // SAFETY: lifetime erasure of a shared reference; the barrier
        // below keeps the referent alive for the full borrow (this
        // function blocks until every helper has checked in, even when
        // the caller's own share panics).
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut g = self.shared.state.lock().expect("pool state poisoned");
            g.job = Some(job);
            g.width = width;
            // Only participating helpers (indices 1..width) check in;
            // the rest skip the epoch without touching the job.
            g.remaining = width - 1;
            g.panic_payload = None;
            g.epoch += 1;
            self.shared.work.notify_all();
        }
        // The caller is worker 0. Catch its panic so the barrier wait
        // below always happens — otherwise the erased job could dangle
        // while a helper still runs it.
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
        let helper_panic = {
            let mut g = self.shared.state.lock().expect("pool state poisoned");
            while g.remaining != 0 {
                g = self.shared.done.wait(g).expect("pool state poisoned");
            }
            g.job = None;
            g.panic_payload.take()
        };
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if let Some(payload) = helper_panic {
            // Re-raise the helper's original panic (message, location
            // payload and all) on the dispatching thread.
            resume_unwind(payload);
        }
    }

    /// Runs `f(i, &mut states[i])` exactly once for every `i` on up to
    /// `workers` workers (clamped to the pool width and the task
    /// count), with or without stealing. Single-worker stages run
    /// inline without waking the pool.
    pub fn run_tasks<S, F>(&self, workers: usize, steal: bool, states: &mut [S], f: F)
    where
        S: Send,
        F: Fn(usize, &mut S) + Sync,
    {
        let len = states.len();
        if len == 0 {
            return;
        }
        let width = workers.min(len).min(self.width()).max(1);
        if width == 1 {
            for (i, state) in states.iter_mut().enumerate() {
                f(i, state);
            }
            return;
        }
        let table = self.claim_gate(len);
        let claims: &ClaimTable = &table;
        let base = TaskBase::new(states);
        let base = &base;
        let f = &f;
        self.dispatch(width, &move |w| {
            drain_worker(claims, base, len, width, w, steal, |i, s: &mut S| f(i, s));
        });
    }

    /// As [`WorkerPool::run_tasks`], with one mutable **worker-local**
    /// state per worker (`worker_states.len()` bounds the width): each
    /// call of `f` receives the state of the worker executing it
    /// alongside the claimed task. Worker state is for reusable scratch
    /// only — anything whose contents influence results belongs in the
    /// per-task state, or the execution schedule becomes observable.
    pub fn run_tasks_with<W, S, F>(
        &self,
        steal: bool,
        worker_states: &mut [W],
        states: &mut [S],
        f: F,
    ) where
        W: Send,
        S: Send,
        F: Fn(&mut W, usize, &mut S) + Sync,
    {
        let len = states.len();
        if len == 0 {
            return;
        }
        let width = worker_states.len().min(len).min(self.width()).max(1);
        if width == 1 {
            let scratch = worker_states
                .first_mut()
                .expect("at least one worker state");
            for (i, state) in states.iter_mut().enumerate() {
                f(scratch, i, state);
            }
            return;
        }
        let table = self.claim_gate(len);
        let claims: &ClaimTable = &table;
        let base = TaskBase::new(states);
        let base = &base;
        let wbase = TaskBase::new(worker_states);
        let wbase = &wbase;
        let f = &f;
        self.dispatch(width, &move |w| {
            // SAFETY: worker index `w < width` is run by exactly one
            // thread per stage (the barrier protocol), so element `w`
            // of the worker-scratch slice is exclusively this
            // worker's.
            #[allow(unsafe_code)]
            let scratch = unsafe { wbase.get(w) };
            drain_worker(claims, base, len, width, w, steal, |i, s: &mut S| {
                f(scratch, i, s);
            });
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut g = self.shared.state.lock().expect("pool state poisoned");
            g.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The parked helper loop: wait for an epoch bump; if this worker is
/// within the stage's width, run the published job and check in — and
/// otherwise skip the epoch without touching the job (its lifetime is
/// guaranteed by the participating workers' barrier alone).
fn helper_loop(shared: &PoolShared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut g = shared.state.lock().expect("pool state poisoned");
            loop {
                if g.shutdown {
                    return;
                }
                if g.epoch != seen {
                    break;
                }
                g = shared.work.wait(g).expect("pool state poisoned");
            }
            seen = g.epoch;
            if index >= g.width {
                // Not part of this stage: no job access, no check-in.
                // (The job may already be cleared — the dispatcher only
                // waits for the *participating* helpers — which is fine
                // because a non-participant never reads it.)
                continue;
            }
            // A participant can always observe the job: the dispatcher
            // cannot clear it before this helper's check-in.
            g.job.expect("job published with the epoch")
        };
        let result = catch_unwind(AssertUnwindSafe(|| job(index)));
        let mut g = shared.state.lock().expect("pool state poisoned");
        if let Err(payload) = result {
            // Keep the first payload; the dispatcher re-raises it.
            g.panic_payload.get_or_insert(payload);
        }
        g.remaining -= 1;
        if g.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

// ---------------------------------------------------------------------------
// Pool-less forms (one-shot callers and tests).

/// Runs `f(i, &mut states[i])` exactly once for every `i`, distributing
/// the tasks over `workers` **scoped threads** with work stealing
/// (unless `steal` is false, in which case each worker only drains its
/// own fixed range). Panics in `f` propagate.
///
/// This is the pool-less form: it spawns threads per call, so hot loops
/// should dispatch through a [`WorkerPool`] instead.
pub fn run_tasks<S, F>(workers: usize, steal: bool, states: &mut [S], f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    let mut worker_states = vec![(); workers.max(1)];
    run_tasks_with(steal, &mut worker_states, states, |_, i, s| f(i, s));
}

/// As [`run_tasks`], with one mutable **worker-local** state per worker
/// thread (`worker_states.len()` sets the worker count): each call of
/// `f` receives the state of the worker executing it alongside the
/// claimed task. Worker state is for reusable scratch only — anything
/// whose contents influence results belongs in the per-task state, or
/// the execution schedule becomes observable.
pub fn run_tasks_with<W, S, F>(steal: bool, worker_states: &mut [W], states: &mut [S], f: F)
where
    W: Send,
    S: Send,
    F: Fn(&mut W, usize, &mut S) + Sync,
{
    let len = states.len();
    if len == 0 {
        return;
    }
    let workers = worker_states.len().min(len).max(1);
    if workers == 1 {
        let scratch = worker_states
            .first_mut()
            .expect("at least one worker state");
        for (i, state) in states.iter_mut().enumerate() {
            f(scratch, i, state);
        }
        return;
    }
    let claims = ClaimTable::with_len(len);
    let claims = &claims;
    let base = TaskBase::new(states);
    let base = &base;
    let f = &f;
    std::thread::scope(|scope| {
        for (w, scratch) in worker_states.iter_mut().take(workers).enumerate() {
            scope.spawn(move || {
                drain_worker(claims, base, len, workers, w, steal, |i, s: &mut S| {
                    f(scratch, i, s);
                });
            });
        }
    });
}

/// Executes the same task set sequentially in a seeded random order — a
/// deterministic stand-in for an arbitrary steal interleaving (see the
/// module docs). Intended for tests.
pub fn run_tasks_fuzzed<S, F>(seed: u64, states: &mut [S], mut f: F)
where
    F: FnMut(usize, &mut S),
{
    let len = states.len();
    let mut order: Vec<usize> = (0..len).collect();
    // Fisher–Yates with the simulation RNG.
    let mut rng = sim_rng(seed);
    for i in (1..len).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    for i in order {
        f(i, &mut states[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_task_runs_exactly_once() {
        for workers in [1, 2, 3, 8, 17] {
            for steal in [false, true] {
                let mut states = vec![0u32; 37];
                run_tasks(workers, steal, &mut states, |i, s| {
                    *s += 1 + i as u32;
                });
                for (i, s) in states.iter().enumerate() {
                    assert_eq!(*s, 1 + i as u32, "task {i} ran {workers}w steal={steal}");
                }
            }
        }
    }

    #[test]
    fn results_are_independent_of_worker_count() {
        let compute = |workers: usize, steal: bool| {
            let mut states = vec![0u64; 64];
            run_tasks(workers, steal, &mut states, |i, s| {
                // A tiny per-task computation with no shared state.
                let mut acc = i as u64;
                for k in 0..100u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                *s = acc;
            });
            states
        };
        let base = compute(1, false);
        for workers in [2, 4, 8] {
            assert_eq!(compute(workers, true), base);
            assert_eq!(compute(workers, false), base);
        }
    }

    #[test]
    fn stealing_covers_a_skewed_workload() {
        // One hot task must not prevent the others from completing;
        // with stealing on, total wall-clock is bounded by the hot task
        // (we only assert completion + exactly-once here).
        let counter = AtomicUsize::new(0);
        let mut states = vec![(); 16];
        run_tasks(4, true, &mut states, |i, _| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn pool_runs_every_task_exactly_once_across_stages() {
        // One pool, many dispatches: the steady-state shape. No stage
        // may lose or duplicate a task, whatever the width asked for.
        let pool = WorkerPool::new(4);
        for stage in 0..50u32 {
            for &workers in &[1usize, 2, 3, 4, 9] {
                for steal in [false, true] {
                    let mut states = vec![0u32; 23];
                    pool.run_tasks(workers, steal, &mut states, |i, s| {
                        *s += stage + i as u32;
                    });
                    for (i, s) in states.iter().enumerate() {
                        assert_eq!(*s, stage + i as u32);
                    }
                }
            }
        }
    }

    #[test]
    fn pool_matches_the_scoped_executor_bit_for_bit() {
        let compute_pool = |pool: &WorkerPool, workers: usize| {
            let mut states = vec![0u64; 64];
            pool.run_tasks(workers, true, &mut states, |i, s| {
                let mut acc = i as u64;
                for k in 0..100u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                *s = acc;
            });
            states
        };
        let mut base = vec![0u64; 64];
        run_tasks(1, false, &mut base, |i, s| {
            let mut acc = i as u64;
            for k in 0..100u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            *s = acc;
        });
        let pool = WorkerPool::new(8);
        for workers in [1, 2, 4, 8] {
            assert_eq!(compute_pool(&pool, workers), base);
        }
    }

    #[test]
    fn pool_counts_only_real_wakeups() {
        let pool = WorkerPool::new(4);
        let mut states = vec![0u8; 8];
        pool.run_tasks(1, true, &mut states, |_, s| *s += 1);
        assert_eq!(pool.dispatches(), 0, "inline stages must not wake the pool");
        pool.run_tasks(4, true, &mut states, |_, s| *s += 1);
        assert_eq!(pool.dispatches(), 1);
        assert!(states.iter().all(|&s| s == 2));
    }

    #[test]
    fn pool_worker_scratch_is_exclusive_per_worker() {
        let pool = WorkerPool::new(3);
        let mut scratch = vec![0u32; 3];
        let mut states = vec![0u32; 64];
        pool.run_tasks_with(true, &mut scratch, &mut states, |scr, _, s| {
            *scr += 1;
            *s = 1;
        });
        assert!(states.iter().all(|&s| s == 1));
        // Every task was counted exactly once across the workers.
        assert_eq!(scratch.iter().sum::<u32>(), 64);
    }

    #[test]
    fn pool_of_width_one_owns_no_threads() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.width(), 1);
        let mut states = vec![0u8; 4];
        pool.run_tasks(8, true, &mut states, |_, s| *s += 1);
        assert!(states.iter().all(|&s| s == 1));
        assert_eq!(pool.dispatches(), 0);
    }

    #[test]
    fn concurrent_dispatches_serialize_safely() {
        // The pool is Sync and shared by Arc, so two threads may
        // legitimately dispatch at once; the gate must serialize the
        // stages (one barrier in flight) with no lost or duplicated
        // tasks on either side.
        let pool = std::sync::Arc::new(WorkerPool::new(4));
        let mut joins = Vec::new();
        for t in 0..3u64 {
            let pool = std::sync::Arc::clone(&pool);
            joins.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let mut states = vec![0u64; 17];
                    pool.run_tasks(4, true, &mut states, |i, s| {
                        *s = t * 1000 + i as u64;
                    });
                    for (i, s) in states.iter().enumerate() {
                        assert_eq!(*s, t * 1000 + i as u64);
                    }
                }
            }));
        }
        for j in joins {
            j.join().expect("dispatcher thread panicked");
        }
    }

    #[test]
    fn pool_propagates_worker_panics() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut states = vec![0u8; 16];
            pool.run_tasks(4, true, &mut states, |i, _| {
                assert!(i != 11, "boom at task {i}");
            });
        }));
        // The panic reaches the dispatcher with its original payload
        // (not a generic "a task panicked" wrapper), whichever worker
        // hit it.
        let payload = result.expect_err("the panic must reach the dispatcher");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a message");
        assert!(msg.contains("boom at task 11"), "lost payload: {msg}");
        // The pool must still be usable after a panicked stage.
        let mut states = vec![0u8; 16];
        pool.run_tasks(4, true, &mut states, |_, s| *s += 1);
        assert!(states.iter().all(|&s| s == 1));
    }

    #[test]
    fn fuzzed_order_visits_every_task_once() {
        for seed in 0..20u64 {
            let mut states = vec![0u32; 23];
            run_tasks_fuzzed(seed, &mut states, |_, s| *s += 1);
            assert!(states.iter().all(|&s| s == 1), "seed {seed}");
        }
    }

    #[test]
    fn fuzzed_orders_differ_across_seeds() {
        let order_of = |seed: u64| {
            let mut order = Vec::new();
            let mut states = vec![(); 23];
            run_tasks_fuzzed(seed, &mut states, |i, _| order.push(i));
            order
        };
        assert_eq!(order_of(5), order_of(5));
        assert_ne!(order_of(5), order_of(6));
    }

    #[test]
    fn own_ranges_partition_the_task_space() {
        for len in [1usize, 7, 64, 100] {
            for workers in [1usize, 2, 5, 8] {
                let mut covered = vec![false; len];
                for w in 0..workers {
                    let (s, e) = own_range(len, workers, w);
                    for slot in covered.iter_mut().take(e).skip(s) {
                        assert!(!*slot, "overlap at len={len} workers={workers}");
                        *slot = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap at len={len} w={workers}");
            }
        }
    }
}
