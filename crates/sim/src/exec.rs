//! A deterministic work-stealing task executor.
//!
//! The sharded simulation (and the fabric's sharded replay) decomposes
//! each phase of a round into one **task per logical shard**. Tasks are
//! independent by construction — a task mutates only its own shard's
//! state — so they can run on any worker in any order, and the caller
//! merges the per-task results **in task-key order** afterwards. That
//! merge is what keeps same-seed runs bit-identical at every worker
//! count: scheduling decides *when* a task runs, never *what it
//! computes or where its output lands*.
//!
//! ## Scheduling
//!
//! [`run_tasks`] gives each worker a contiguous range of task indices
//! (the same fixed ownership the pre-stealing executor used) and a
//! shared claim table. A worker drains its own range front to back,
//! then **steals**: it scans the other ranges and claims unstarted
//! tasks from their tails. Claiming is a single compare-and-swap per
//! task, so a task runs exactly once no matter how many workers race
//! for it. With `steal` disabled the executor degrades to the fixed
//! ownership model (a hot range then idles the other workers — kept as
//! a measurable baseline and a fallback).
//!
//! ## Testing interleavings
//!
//! [`run_tasks_fuzzed`] executes the same task set sequentially in a
//! seeded random order. Because tasks share no mutable state, any
//! parallel interleaving is observationally equivalent to *some*
//! sequential permutation — so driving random permutations through the
//! full pipeline and asserting unchanged results is an effective (and
//! deterministic) test of the independence contract.

use std::sync::Mutex;

use rand::Rng;

use crate::rng::sim_rng;

/// One claimable task slot. The `Option` is the claim: `take()` under
/// the (uncontended, short-lived) lock yields the state's `&mut`
/// exactly once, so a task runs on exactly one worker with exclusive
/// access — no unsafe code needed, and at one lock per *task* (not per
/// unit of work inside it) the cost is noise.
type TaskSlot<'a, S> = Mutex<Option<&'a mut S>>;

/// Claims task `i`, returning its state on first claim only.
fn claim<'a, S>(slots: &[TaskSlot<'a, S>], i: usize) -> Option<&'a mut S> {
    slots[i].lock().expect("task slot poisoned").take()
}

/// The contiguous task range initially owned by worker `w` of `workers`.
fn own_range(len: usize, workers: usize, w: usize) -> (usize, usize) {
    let per = len.div_ceil(workers);
    let start = (w * per).min(len);
    (start, (start + per).min(len))
}

/// Runs `f(i, &mut states[i])` exactly once for every `i`, distributing
/// the tasks over `workers` threads with work stealing (unless `steal`
/// is false, in which case each worker only drains its own fixed
/// range). Panics in `f` propagate.
///
/// Results must be written into `states[i]` (or derived from it): the
/// caller reads them back in index order, which is what makes the
/// execution order unobservable.
pub fn run_tasks<S, F>(workers: usize, steal: bool, states: &mut [S], f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    let mut worker_states = vec![(); workers.max(1)];
    run_tasks_with(steal, &mut worker_states, states, |_, i, s| f(i, s));
}

/// As [`run_tasks`], with one mutable **worker-local** state per worker
/// thread (`worker_states.len()` sets the worker count): each call of
/// `f` receives the state of the worker executing it alongside the
/// claimed task. Worker state is for reusable scratch only — anything
/// whose contents influence results belongs in the per-task state, or
/// the execution schedule becomes observable.
pub fn run_tasks_with<W, S, F>(steal: bool, worker_states: &mut [W], states: &mut [S], f: F)
where
    W: Send,
    S: Send,
    F: Fn(&mut W, usize, &mut S) + Sync,
{
    let len = states.len();
    if len == 0 {
        return;
    }
    let workers = worker_states.len().min(len).max(1);
    if workers == 1 {
        let scratch = worker_states
            .first_mut()
            .expect("at least one worker state");
        for (i, state) in states.iter_mut().enumerate() {
            f(scratch, i, state);
        }
        return;
    }
    let slots: Vec<TaskSlot<'_, S>> = states.iter_mut().map(|s| Mutex::new(Some(s))).collect();
    let slots = &slots;
    let f = &f;
    std::thread::scope(|scope| {
        for (w, scratch) in worker_states.iter_mut().take(workers).enumerate() {
            scope.spawn(move || {
                // Own range first, front to back.
                let (start, end) = own_range(len, workers, w);
                for i in start..end {
                    if let Some(state) = claim(slots, i) {
                        f(scratch, i, state);
                    }
                }
                if !steal {
                    return;
                }
                // Steal pass: walk the other workers' ranges from the
                // tail (the work an owner reaches last), nearest victim
                // first.
                for step in 1..workers {
                    let victim = (w + step) % workers;
                    let (vs, ve) = own_range(len, workers, victim);
                    for i in (vs..ve).rev() {
                        if let Some(state) = claim(slots, i) {
                            f(scratch, i, state);
                        }
                    }
                }
            });
        }
    });
}

/// Executes the same task set sequentially in a seeded random order — a
/// deterministic stand-in for an arbitrary steal interleaving (see the
/// module docs). Intended for tests.
pub fn run_tasks_fuzzed<S, F>(seed: u64, states: &mut [S], mut f: F)
where
    F: FnMut(usize, &mut S),
{
    let len = states.len();
    let mut order: Vec<usize> = (0..len).collect();
    // Fisher–Yates with the simulation RNG.
    let mut rng = sim_rng(seed);
    for i in (1..len).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    for i in order {
        f(i, &mut states[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_task_runs_exactly_once() {
        for workers in [1, 2, 3, 8, 17] {
            for steal in [false, true] {
                let mut states = vec![0u32; 37];
                run_tasks(workers, steal, &mut states, |i, s| {
                    *s += 1 + i as u32;
                });
                for (i, s) in states.iter().enumerate() {
                    assert_eq!(*s, 1 + i as u32, "task {i} ran {workers}w steal={steal}");
                }
            }
        }
    }

    #[test]
    fn results_are_independent_of_worker_count() {
        let compute = |workers: usize, steal: bool| {
            let mut states = vec![0u64; 64];
            run_tasks(workers, steal, &mut states, |i, s| {
                // A tiny per-task computation with no shared state.
                let mut acc = i as u64;
                for k in 0..100u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                *s = acc;
            });
            states
        };
        let base = compute(1, false);
        for workers in [2, 4, 8] {
            assert_eq!(compute(workers, true), base);
            assert_eq!(compute(workers, false), base);
        }
    }

    #[test]
    fn stealing_covers_a_skewed_workload() {
        // One hot task must not prevent the others from completing;
        // with stealing on, total wall-clock is bounded by the hot task
        // (we only assert completion + exactly-once here).
        let counter = AtomicUsize::new(0);
        let mut states = vec![(); 16];
        run_tasks(4, true, &mut states, |i, _| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn fuzzed_order_visits_every_task_once() {
        for seed in 0..20u64 {
            let mut states = vec![0u32; 23];
            run_tasks_fuzzed(seed, &mut states, |_, s| *s += 1);
            assert!(states.iter().all(|&s| s == 1), "seed {seed}");
        }
    }

    #[test]
    fn fuzzed_orders_differ_across_seeds() {
        let order_of = |seed: u64| {
            let mut order = Vec::new();
            let mut states = vec![(); 23];
            run_tasks_fuzzed(seed, &mut states, |i, _| order.push(i));
            order
        };
        assert_eq!(order_of(5), order_of(5));
        assert_ne!(order_of(5), order_of(6));
    }

    #[test]
    fn own_ranges_partition_the_task_space() {
        for len in [1usize, 7, 64, 100] {
            for workers in [1usize, 2, 5, 8] {
                let mut covered = vec![false; len];
                for w in 0..workers {
                    let (s, e) = own_range(len, workers, w);
                    for slot in covered.iter_mut().take(e).skip(s) {
                        assert!(!*slot, "overlap at len={len} workers={workers}");
                        *slot = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap at len={len} w={workers}");
            }
        }
    }
}
