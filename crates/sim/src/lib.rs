//! Deterministic round-based simulation engine.
//!
//! The paper evaluates its protocol on PeerSim, a round-based peer-to-peer
//! simulator: "in a round, each peer is given the opportunity to execute
//! some code …; execution is sequential … but the order of peers is chosen
//! randomly at each round" (§3.1). This crate is that execution model in
//! Rust:
//!
//! * [`Engine`] drives a [`World`] one round at a time, shuffling the
//!   activation order each round with a seeded RNG, so whole simulations
//!   are reproducible from a single `u64` seed.
//! * [`Round`] is the simulation clock (1 round = 1 hour in the paper's
//!   configuration; the engine itself is unit-agnostic).
//! * [`TimingWheel`] is an O(1) future-event scheduler used for departures
//!   and availability transitions.
//! * [`rng`] has seed-derivation helpers so that sub-streams (per peer,
//!   per experiment arm) are independent but reproducible.

pub mod arena;
pub mod clock;
pub mod engine;
pub mod exec;
pub mod rng;
pub mod wheel;

pub use arena::BufPool;
pub use clock::Round;
pub use engine::{Engine, RoundReport, World};
pub use exec::{run_tasks, run_tasks_fuzzed, run_tasks_with, WorkerPool};
pub use rng::{derive_seed, sim_rng, SimRng};
pub use wheel::{HierarchicalWheel, TimingWheel};
