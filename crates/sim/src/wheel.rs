//! A hashed timing wheel for future-event scheduling.
//!
//! Departures and availability transitions are known in advance, so the
//! simulator schedules them instead of polling every peer every round.
//! The wheel gives O(1) insert and amortised O(1) pop; events scheduled
//! beyond the wheel horizon simply recirculate (each lap costs one extra
//! touch, which is negligible at our scales).

use crate::clock::Round;

/// A future-event scheduler keyed by [`Round`].
#[derive(Debug, Clone)]
pub struct TimingWheel<T> {
    /// `buckets[round % horizon]` holds `(due_round, item)` pairs.
    buckets: Vec<Vec<(u64, T)>>,
    /// Number of scheduled items.
    len: usize,
    /// Current position; only events due at or after this round may be
    /// scheduled.
    now: u64,
}

impl<T> TimingWheel<T> {
    /// Creates a wheel with the given horizon (bucket count).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon > 0, "wheel horizon must be positive");
        TimingWheel {
            buckets: (0..horizon).map(|_| Vec::new()).collect(),
            len: 0,
            now: 0,
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `item` to fire at `due`. Scheduling at [`Round::NEVER`]
    /// is a no-op (the item is silently dropped), which is how "durable"
    /// peers express that they never depart.
    ///
    /// # Panics
    ///
    /// Panics if `due` is before the wheel's current round.
    pub fn schedule(&mut self, due: Round, item: T) {
        if due == Round::NEVER {
            return;
        }
        assert!(
            due.index() >= self.now,
            "cannot schedule into the past (due {due}, now r{})",
            self.now
        );
        let idx = (due.index() % self.buckets.len() as u64) as usize;
        self.buckets[idx].push((due.index(), item));
        self.len += 1;
    }

    /// Advances the wheel to `now` and invokes `fire` for every event due
    /// at that round. Must be called with strictly increasing rounds
    /// (gaps are allowed; recirculating events are then handled lazily).
    pub fn advance(&mut self, now: Round, mut fire: impl FnMut(T)) {
        debug_assert!(now.index() >= self.now, "wheel moved backwards");
        // With per-round stepping (the engine's behaviour) each bucket is
        // visited exactly once per lap. For larger jumps, visit every
        // bucket index in the skipped range once.
        let horizon = self.buckets.len() as u64;
        let from = self.now;
        let to = now.index();
        let steps = (to - from).min(horizon.saturating_sub(1)) + 1;
        self.now = to;
        for step in (0..steps).rev() {
            let round = to - step;
            let idx = (round % horizon) as usize;
            let bucket = &mut self.buckets[idx];
            if bucket.is_empty() {
                continue;
            }
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].0 <= to {
                    let (_, item) = bucket.swap_remove(i);
                    self.len -= 1;
                    fire(item);
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// A two-level hashed timing wheel: an **inner** wheel with one bucket
/// per round for near events, and an **outer** wheel whose buckets each
/// span a whole inner lap for far events.
///
/// The single-level [`TimingWheel`] touches every out-of-horizon event
/// once per lap (every `horizon` rounds): a peer lifetime of several
/// simulated years recirculates dozens of times before it fires. Here a
/// far event sits untouched in its outer bucket until the lap
/// containing its due round begins, is **cascaded** into the inner
/// wheel once, and then fires normally — so events within
/// `inner × outer` rounds are touched at most twice, and only events
/// beyond that (≈30 simulated years at the default geometry) ever
/// recirculate, at one touch per `inner × outer` rounds instead of one
/// per `horizon`.
///
/// [`HierarchicalWheel::touches`] counts every time an event is
/// examined (fired, cascaded, or recirculated) — the diagnostic the
/// `protocol_kernels` wheel benchmark and the touch-count tests read.
#[derive(Debug, Clone)]
pub struct HierarchicalWheel<T> {
    /// `inner[round % inner_len]` holds `(due, item)` with `due` inside
    /// the current inner lap.
    inner: Vec<Vec<(u64, T)>>,
    /// `outer[(due / inner_len) % outer_len]` holds far events.
    outer: Vec<Vec<(u64, T)>>,
    len: usize,
    now: u64,
    touches: u64,
}

impl<T> HierarchicalWheel<T> {
    /// Creates a wheel with `inner` one-round buckets and `outer`
    /// lap-spanning buckets (direct horizon `inner × outer` rounds).
    ///
    /// # Panics
    ///
    /// Panics if either level has zero buckets.
    pub fn new(inner: usize, outer: usize) -> Self {
        assert!(inner > 0 && outer > 0, "wheel levels must be positive");
        HierarchicalWheel {
            inner: (0..inner).map(|_| Vec::new()).collect(),
            outer: (0..outer).map(|_| Vec::new()).collect(),
            len: 0,
            now: 0,
            touches: 0,
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cumulative count of event examinations (fires, cascades and
    /// recirculations) — the cost metric the hierarchy minimises.
    pub fn touches(&self) -> u64 {
        self.touches
    }

    /// Schedules `item` at `due`; [`Round::NEVER`] is silently dropped.
    ///
    /// # Panics
    ///
    /// Panics if `due` is before the wheel's current round.
    pub fn schedule(&mut self, due: Round, item: T) {
        if due == Round::NEVER {
            return;
        }
        let due = due.index();
        assert!(
            due >= self.now,
            "cannot schedule into the past (due r{due}, now r{})",
            self.now
        );
        let h1 = self.inner.len() as u64;
        self.len += 1;
        if due - self.now < h1 {
            let idx = (due % h1) as usize;
            self.inner[idx].push((due, item));
        } else {
            let idx = ((due / h1) % self.outer.len() as u64) as usize;
            self.outer[idx].push((due, item));
        }
    }

    /// Advances to `now`, firing every event due at or before it. Must
    /// be called with non-decreasing rounds; advancing by a gap of `g`
    /// rounds costs O(g) bucket visits.
    pub fn advance(&mut self, now: Round, mut fire: impl FnMut(T)) {
        debug_assert!(now.index() >= self.now, "wheel moved backwards");
        let h1 = self.inner.len() as u64;
        let from = self.now;
        for round in from..=now.index() {
            // Entering a new inner lap: cascade the outer bucket whose
            // window starts here.
            if round % h1 == 0 && (round > from || round == 0) {
                self.cascade(round);
            }
            self.fire_inner(round, &mut fire);
            self.now = round;
        }
    }

    /// Moves the events of the outer bucket for the lap starting at
    /// `round` into the inner wheel; events for a later revolution of
    /// the outer wheel recirculate in place.
    fn cascade(&mut self, round: u64) {
        let h1 = self.inner.len() as u64;
        let idx = ((round / h1) % self.outer.len() as u64) as usize;
        let bucket = &mut self.outer[idx];
        let mut i = 0;
        while i < bucket.len() {
            self.touches += 1;
            if bucket[i].0 < round + h1 {
                let (due, item) = bucket.swap_remove(i);
                debug_assert!(due >= round, "outer event cascaded late");
                self.inner[(due % h1) as usize].push((due, item));
            } else {
                i += 1; // a later revolution: one touch per outer lap
            }
        }
    }

    fn fire_inner(&mut self, round: u64, fire: &mut impl FnMut(T)) {
        let h1 = self.inner.len() as u64;
        let bucket = &mut self.inner[(round % h1) as usize];
        let mut i = 0;
        while i < bucket.len() {
            self.touches += 1;
            if bucket[i].0 <= round {
                let (_, item) = bucket.swap_remove(i);
                self.len -= 1;
                fire(item);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_events_at_their_round() {
        let mut wheel: TimingWheel<&str> = TimingWheel::new(8);
        wheel.schedule(Round(3), "a");
        wheel.schedule(Round(5), "b");
        wheel.schedule(Round(3), "c");
        assert_eq!(wheel.len(), 3);

        let mut fired = Vec::new();
        for r in 0..=6 {
            wheel.advance(Round(r), |item| fired.push((r, item)));
        }
        fired.sort();
        assert_eq!(fired, vec![(3, "a"), (3, "c"), (5, "b")]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn events_beyond_horizon_recirculate() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new(4);
        wheel.schedule(Round(9), 9); // 9 % 4 == 1: will be touched at r1, r5, fires at r9
        wheel.schedule(Round(1), 1);
        let mut fired = Vec::new();
        for r in 0..=10 {
            wheel.advance(Round(r), |item| fired.push((r, item)));
        }
        assert_eq!(fired, vec![(1, 1), (9, 9)]);
    }

    #[test]
    fn never_is_dropped() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new(4);
        wheel.schedule(Round::NEVER, 1);
        assert!(wheel.is_empty());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new(4);
        wheel.advance(Round(5), |_| {});
        wheel.schedule(Round(3), 1);
    }

    #[test]
    fn advancing_with_gaps_fires_skipped_events() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new(8);
        for r in 1..=20 {
            wheel.schedule(Round(r), r as u32);
        }
        let mut fired = Vec::new();
        wheel.advance(Round(10), |item| fired.push(item));
        fired.sort();
        assert_eq!(fired, (1..=10).collect::<Vec<u32>>());
        let mut rest = Vec::new();
        wheel.advance(Round(20), |item| rest.push(item));
        rest.sort();
        assert_eq!(rest, (11..=20).collect::<Vec<u32>>());
    }

    #[test]
    fn scheduling_at_current_round_fires_on_next_advance_of_same_round() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new(4);
        wheel.advance(Round(2), |_| {});
        wheel.schedule(Round(2), 7);
        let mut fired = Vec::new();
        wheel.advance(Round(2), |item| fired.push(item));
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn hierarchical_fires_events_at_their_round() {
        let mut wheel: HierarchicalWheel<u64> = HierarchicalWheel::new(8, 8);
        let dues = [0u64, 1, 3, 7, 8, 9, 15, 40, 63, 64, 200];
        for &d in &dues {
            wheel.schedule(Round(d), d);
        }
        assert_eq!(wheel.len(), dues.len());
        let mut fired = Vec::new();
        for r in 0..=200 {
            wheel.advance(Round(r), |item| {
                assert_eq!(item, r, "event fired at wrong round");
                fired.push(item);
            });
        }
        fired.sort_unstable();
        let mut expected = dues.to_vec();
        expected.sort_unstable();
        assert_eq!(fired, expected);
        assert!(wheel.is_empty());
    }

    #[test]
    fn hierarchical_never_is_dropped_and_past_panics() {
        let mut wheel: HierarchicalWheel<u32> = HierarchicalWheel::new(4, 4);
        wheel.schedule(Round::NEVER, 1);
        assert!(wheel.is_empty());
        wheel.advance(Round(5), |_| {});
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| wheel.schedule(Round(3), 1)));
        assert!(r.is_err(), "scheduling into the past must panic");
    }

    #[test]
    fn hierarchical_schedule_at_current_round_fires_on_readvance() {
        let mut wheel: HierarchicalWheel<u32> = HierarchicalWheel::new(4, 4);
        wheel.advance(Round(2), |_| {});
        wheel.schedule(Round(2), 7);
        let mut fired = Vec::new();
        wheel.advance(Round(2), |item| fired.push(item));
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn hierarchical_cuts_touches_for_far_events() {
        // A multi-year lifetime (50k rounds out) recirculates ~24 times
        // through a flat 2048-bucket wheel but is touched at most twice
        // by the hierarchy (one cascade + one fire).
        const DUE: u64 = 50_000;
        let mut flat: TimingWheel<u32> = TimingWheel::new(2048);
        flat.schedule(Round(DUE), 1);
        let mut flat_touches = 0u64;
        for r in 0..=DUE {
            // Count bucket hits by probing the only bucket that can
            // hold the event.
            let _ = r;
            flat.advance(Round(r), |_| {});
        }
        // The flat wheel offers no touch counter; derive the expected
        // recirculation count analytically instead.
        flat_touches += DUE / 2048 + 1;

        let mut hier: HierarchicalWheel<u32> = HierarchicalWheel::new(512, 512);
        hier.schedule(Round(DUE), 1);
        let mut fired = 0;
        for r in 0..=DUE {
            hier.advance(Round(r), |_| fired += 1);
        }
        assert_eq!(fired, 1);
        assert!(
            hier.touches() <= 2,
            "hierarchical wheel touched a far event {} times (flat: {flat_touches})",
            hier.touches()
        );
        assert!(hier.touches() < flat_touches);
    }

    #[test]
    fn hierarchical_stress_random_order_matches_flat() {
        use rand::Rng;
        let mut rng = crate::rng::sim_rng(99);
        let mut wheel: HierarchicalWheel<u64> = HierarchicalWheel::new(32, 16);
        let mut expected = vec![0u32; 3000];
        for _ in 0..10_000 {
            let due = rng.gen_range(0..3000u64);
            wheel.schedule(Round(due), due);
            expected[due as usize] += 1;
        }
        let mut got = vec![0u32; 3000];
        for r in 0..3000 {
            wheel.advance(Round(r), |item| {
                assert_eq!(item, r, "event fired at wrong round");
                got[item as usize] += 1;
            });
        }
        assert_eq!(got, expected);
        assert!(wheel.is_empty());
    }

    #[test]
    fn hierarchical_beyond_direct_horizon_recirculates_correctly() {
        let mut wheel: HierarchicalWheel<u64> = HierarchicalWheel::new(4, 4);
        // Direct horizon is 16 rounds; 35 needs one outer revolution.
        wheel.schedule(Round(35), 35);
        wheel.schedule(Round(2), 2);
        let mut fired = Vec::new();
        for r in 0..=40 {
            wheel.advance(Round(r), |item| fired.push((r, item)));
        }
        assert_eq!(fired, vec![(2, 2), (35, 35)]);
    }

    #[test]
    fn stress_many_events_random_order() {
        use rand::Rng;
        let mut rng = crate::rng::sim_rng(1234);
        let mut wheel: TimingWheel<u64> = TimingWheel::new(64);
        let mut expected = vec![0u32; 5000];
        for _ in 0..20_000 {
            let due = rng.gen_range(0..5000u64);
            wheel.schedule(Round(due), due);
            expected[due as usize] += 1;
        }
        let mut got = vec![0u32; 5000];
        for r in 0..5000 {
            wheel.advance(Round(r), |item| {
                assert_eq!(item, r, "event fired at wrong round");
                got[item as usize] += 1;
            });
        }
        assert_eq!(got, expected);
        assert!(wheel.is_empty());
    }
}
