//! A hashed timing wheel for future-event scheduling.
//!
//! Departures and availability transitions are known in advance, so the
//! simulator schedules them instead of polling every peer every round.
//! The wheel gives O(1) insert and amortised O(1) pop; events scheduled
//! beyond the wheel horizon simply recirculate (each lap costs one extra
//! touch, which is negligible at our scales).

use crate::clock::Round;

/// A future-event scheduler keyed by [`Round`].
#[derive(Debug, Clone)]
pub struct TimingWheel<T> {
    /// `buckets[round % horizon]` holds `(due_round, item)` pairs.
    buckets: Vec<Vec<(u64, T)>>,
    /// Number of scheduled items.
    len: usize,
    /// Current position; only events due at or after this round may be
    /// scheduled.
    now: u64,
}

impl<T> TimingWheel<T> {
    /// Creates a wheel with the given horizon (bucket count).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon > 0, "wheel horizon must be positive");
        TimingWheel {
            buckets: (0..horizon).map(|_| Vec::new()).collect(),
            len: 0,
            now: 0,
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `item` to fire at `due`. Scheduling at [`Round::NEVER`]
    /// is a no-op (the item is silently dropped), which is how "durable"
    /// peers express that they never depart.
    ///
    /// # Panics
    ///
    /// Panics if `due` is before the wheel's current round.
    pub fn schedule(&mut self, due: Round, item: T) {
        if due == Round::NEVER {
            return;
        }
        assert!(
            due.index() >= self.now,
            "cannot schedule into the past (due {due}, now r{})",
            self.now
        );
        let idx = (due.index() % self.buckets.len() as u64) as usize;
        self.buckets[idx].push((due.index(), item));
        self.len += 1;
    }

    /// Advances the wheel to `now` and invokes `fire` for every event due
    /// at that round. Must be called with strictly increasing rounds
    /// (gaps are allowed; recirculating events are then handled lazily).
    pub fn advance(&mut self, now: Round, mut fire: impl FnMut(T)) {
        debug_assert!(now.index() >= self.now, "wheel moved backwards");
        // With per-round stepping (the engine's behaviour) each bucket is
        // visited exactly once per lap. For larger jumps, visit every
        // bucket index in the skipped range once.
        let horizon = self.buckets.len() as u64;
        let from = self.now;
        let to = now.index();
        let steps = (to - from).min(horizon.saturating_sub(1)) + 1;
        self.now = to;
        for step in (0..steps).rev() {
            let round = to - step;
            let idx = (round % horizon) as usize;
            let bucket = &mut self.buckets[idx];
            if bucket.is_empty() {
                continue;
            }
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].0 <= to {
                    let (_, item) = bucket.swap_remove(i);
                    self.len -= 1;
                    fire(item);
                } else {
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_events_at_their_round() {
        let mut wheel: TimingWheel<&str> = TimingWheel::new(8);
        wheel.schedule(Round(3), "a");
        wheel.schedule(Round(5), "b");
        wheel.schedule(Round(3), "c");
        assert_eq!(wheel.len(), 3);

        let mut fired = Vec::new();
        for r in 0..=6 {
            wheel.advance(Round(r), |item| fired.push((r, item)));
        }
        fired.sort();
        assert_eq!(fired, vec![(3, "a"), (3, "c"), (5, "b")]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn events_beyond_horizon_recirculate() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new(4);
        wheel.schedule(Round(9), 9); // 9 % 4 == 1: will be touched at r1, r5, fires at r9
        wheel.schedule(Round(1), 1);
        let mut fired = Vec::new();
        for r in 0..=10 {
            wheel.advance(Round(r), |item| fired.push((r, item)));
        }
        assert_eq!(fired, vec![(1, 1), (9, 9)]);
    }

    #[test]
    fn never_is_dropped() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new(4);
        wheel.schedule(Round::NEVER, 1);
        assert!(wheel.is_empty());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new(4);
        wheel.advance(Round(5), |_| {});
        wheel.schedule(Round(3), 1);
    }

    #[test]
    fn advancing_with_gaps_fires_skipped_events() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new(8);
        for r in 1..=20 {
            wheel.schedule(Round(r), r as u32);
        }
        let mut fired = Vec::new();
        wheel.advance(Round(10), |item| fired.push(item));
        fired.sort();
        assert_eq!(fired, (1..=10).collect::<Vec<u32>>());
        let mut rest = Vec::new();
        wheel.advance(Round(20), |item| rest.push(item));
        rest.sort();
        assert_eq!(rest, (11..=20).collect::<Vec<u32>>());
    }

    #[test]
    fn scheduling_at_current_round_fires_on_next_advance_of_same_round() {
        let mut wheel: TimingWheel<u32> = TimingWheel::new(4);
        wheel.advance(Round(2), |_| {});
        wheel.schedule(Round(2), 7);
        let mut fired = Vec::new();
        wheel.advance(Round(2), |item| fired.push(item));
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn stress_many_events_random_order() {
        use rand::Rng;
        let mut rng = crate::rng::sim_rng(1234);
        let mut wheel: TimingWheel<u64> = TimingWheel::new(64);
        let mut expected = vec![0u32; 5000];
        for _ in 0..20_000 {
            let due = rng.gen_range(0..5000u64);
            wheel.schedule(Round(due), due);
            expected[due as usize] += 1;
        }
        let mut got = vec![0u32; 5000];
        for r in 0..5000 {
            wheel.advance(Round(r), |item| {
                assert_eq!(item, r, "event fired at wrong round");
                got[item as usize] += 1;
            });
        }
        assert_eq!(got, expected);
        assert!(wheel.is_empty());
    }
}
