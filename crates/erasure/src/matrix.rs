//! Dense matrices over GF(2^8).
//!
//! Row-major storage; dimensions here are at most 256×256 (bounded by the
//! field size), so simple dense algorithms are the right tool.

use core::fmt;

use peerback_gf256::Gf256;

use crate::ErasureError;

/// A dense matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// Creates the `size × size` identity matrix.
    pub fn identity(size: usize) -> Self {
        let mut m = Matrix::zero(size, size);
        for i in 0..size {
            m.set(i, i, Gf256::ONE);
        }
        m
    }

    /// Builds a matrix from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Gf256) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Builds a `rows × cols` Vandermonde matrix — entry
    /// `(r, c) = point_r ^ c` — over distinct evaluation points. Rows
    /// `0..255` use the generator powers `g^r`; row 255 (only reachable
    /// when `rows == 256`) uses the remaining field element, `0`. With all
    /// points distinct, any `cols` rows are linearly independent, which is
    /// the property the erasure code relies on.
    ///
    /// # Panics
    ///
    /// Panics if `rows > 256` (GF(2^8) has only 256 distinct points).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 256, "at most 256 distinct points exist in GF(2^8)");
        let point = |r: usize| if r < 255 { Gf256::exp(r) } else { Gf256::ZERO };
        Matrix::from_fn(rows, cols, |r, c| point(r).pow(c as u64))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Gf256 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: Gf256) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Borrows a whole row.
    #[inline]
    pub fn row(&self, row: usize) -> &[Gf256] {
        debug_assert!(row < self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn multiply(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "inner dimensions must agree for multiplication"
        );
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for inner in 0..self.cols {
                let a = self.get(r, inner);
                if a.is_zero() {
                    continue;
                }
                for c in 0..rhs.cols {
                    let add = a * rhs.get(inner, c);
                    out.set(r, c, out.get(r, c) + add);
                }
            }
        }
        out
    }

    /// Returns a new matrix made of the given rows of `self`, in order.
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of range.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (dst, &src) in rows.iter().enumerate() {
            assert!(src < self.rows, "row index {src} out of range");
            for c in 0..self.cols {
                out.set(dst, c, self.get(src, c));
            }
        }
        out
    }

    /// Returns the sub-matrix spanning `row_range × col_range` half-open.
    pub fn submatrix(
        &self,
        rows: core::ops::Range<usize>,
        cols: core::ops::Range<usize>,
    ) -> Matrix {
        assert!(rows.end <= self.rows && cols.end <= self.cols);
        Matrix::from_fn(rows.len(), cols.len(), |r, c| {
            self.get(rows.start + r, cols.start + c)
        })
    }

    /// Inverts the matrix by Gauss–Jordan elimination with partial
    /// pivoting (pivot search only needs a nonzero element in an exact
    /// field).
    ///
    /// # Errors
    ///
    /// [`ErasureError::SingularMatrix`] if no inverse exists.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Result<Matrix, ErasureError> {
        assert_eq!(self.rows, self.cols, "only square matrices can be inverted");
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Find a pivot row at or below `col`.
            let pivot = (col..n)
                .find(|&r| !work.get(r, col).is_zero())
                .ok_or(ErasureError::SingularMatrix)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalise the pivot row.
            let scale = work.get(col, col).inv();
            work.scale_row(col, scale);
            inv.scale_row(col, scale);
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = work.get(r, col);
                if factor.is_zero() {
                    continue;
                }
                work.add_scaled_row(r, col, factor);
                inv.add_scaled_row(r, col, factor);
            }
        }
        Ok(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.cols);
        head[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    fn scale_row(&mut self, row: usize, factor: Gf256) {
        for c in 0..self.cols {
            let v = self.get(row, c);
            self.set(row, c, v * factor);
        }
    }

    /// `row_dst -= factor * row_src` (== `+=` in characteristic 2).
    fn add_scaled_row(&mut self, dst: usize, src: usize, factor: Gf256) {
        for c in 0..self.cols {
            let add = self.get(src, c) * factor;
            let v = self.get(dst, c);
            self.set(dst, c, v + add);
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:02x} ", self.get(r, c).value())?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication_is_neutral() {
        let m = Matrix::vandermonde(4, 4);
        let id = Matrix::identity(4);
        assert_eq!(m.multiply(&id), m);
        assert_eq!(id.multiply(&m), m);
    }

    #[test]
    fn vandermonde_entries_are_powers() {
        let m = Matrix::vandermonde(5, 3);
        for r in 0..5 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), Gf256::exp(r).pow(c as u64));
            }
        }
        // First column is all ones (x^0).
        for r in 0..5 {
            assert_eq!(m.get(r, 0), Gf256::ONE);
        }
    }

    #[test]
    fn inverse_times_original_is_identity() {
        for size in 1..=8 {
            let m = Matrix::vandermonde(size, size);
            let inv = m.inverse().expect("vandermonde is invertible");
            assert_eq!(m.multiply(&inv), Matrix::identity(size), "size={size}");
            assert_eq!(inv.multiply(&m), Matrix::identity(size), "size={size}");
        }
    }

    #[test]
    fn singular_matrix_is_detected() {
        // Two identical rows.
        let mut m = Matrix::vandermonde(3, 3);
        for c in 0..3 {
            let v = m.get(0, c);
            m.set(1, c, v);
        }
        assert_eq!(m.inverse(), Err(ErasureError::SingularMatrix));
    }

    #[test]
    fn zero_matrix_is_singular() {
        assert_eq!(
            Matrix::zero(2, 2).inverse(),
            Err(ErasureError::SingularMatrix)
        );
    }

    #[test]
    fn select_rows_preserves_content_and_order() {
        let m = Matrix::vandermonde(6, 3);
        let sel = m.select_rows(&[4, 1]);
        assert_eq!(sel.rows(), 2);
        assert_eq!(sel.row(0), m.row(4));
        assert_eq!(sel.row(1), m.row(1));
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_fn(4, 4, |r, c| Gf256::new((r * 4 + c) as u8));
        let sub = m.submatrix(1..3, 2..4);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.cols(), 2);
        assert_eq!(sub.get(0, 0), m.get(1, 2));
        assert_eq!(sub.get(0, 1), m.get(1, 3));
        assert_eq!(sub.get(1, 0), m.get(2, 2));
        assert_eq!(sub.get(1, 1), m.get(2, 3));
    }

    #[test]
    fn multiplication_associates() {
        let a = Matrix::vandermonde(3, 3);
        let b = Matrix::vandermonde(3, 3).inverse().unwrap();
        let c = Matrix::from_fn(3, 3, |r, c| Gf256::new((r + 7 * c + 1) as u8));
        assert_eq!(a.multiply(&b).multiply(&c), a.multiply(&b.multiply(&c)));
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_dimension_panics() {
        let _ = Matrix::zero(0, 3);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.multiply(&b);
    }

    #[test]
    fn any_square_subset_of_vandermonde_rows_is_invertible() {
        // The defining property the codec depends on: any k rows of an
        // n×k Vandermonde matrix with distinct points form an invertible
        // matrix. Exhaustive over 3-subsets of 8 rows.
        let m = Matrix::vandermonde(8, 3);
        for a in 0..8 {
            for b in (a + 1)..8 {
                for c in (b + 1)..8 {
                    let sub = m.select_rows(&[a, b, c]);
                    assert!(sub.inverse().is_ok(), "rows {a},{b},{c}");
                }
            }
        }
    }
}
