//! Systematic Reed–Solomon erasure coding over GF(2^8).
//!
//! The backup system described by Bernard & Le Fessant (2009) stores each
//! archive as `n = k + m` blocks such that **any** `k` of them reconstruct
//! the original data (§2.1 of the paper, with the headline configuration
//! `k = 128`, `m = 128`). This crate provides that codec:
//!
//! * [`ReedSolomon`] — a reusable encoder/decoder for a fixed `(k, m)`
//!   geometry. The code is *systematic*: the first `k` shards are the
//!   original data blocks, matching the paper's description of
//!   Reed–Solomon ("the k first blocks are the original ones").
//! * [`Matrix`] — dense matrix algebra over GF(2^8) (construction,
//!   multiplication, Gaussian inversion) used to build the encoding matrix
//!   and to invert shard subsets during reconstruction.
//! * [`ShardSet`] — a container tracking which shards of an encoded block
//!   set are present, with helpers used by the repair path.
//!
//! # Quickstart
//!
//! ```
//! use peerback_erasure::ReedSolomon;
//!
//! let rs = ReedSolomon::new(4, 2).unwrap();
//! let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
//! let mut shards: Vec<Vec<u8>> = data.clone();
//! shards.extend(rs.encode(&data).unwrap());
//!
//! // Lose any two shards...
//! let survivors = vec![
//!     (5usize, shards[5].clone()),
//!     (2, shards[2].clone()),
//!     (0, shards[0].clone()),
//!     (4, shards[4].clone()),
//! ];
//! let recovered = rs.reconstruct_data(&survivors, 16).unwrap();
//! assert_eq!(recovered, data);
//! ```

mod error;
mod matrix;
mod rs;
mod shard;

pub use error::ErasureError;
pub use matrix::Matrix;
pub use rs::{DecodePlan, ReedSolomon};
pub use shard::{Shard, ShardIndex, ShardSet};
