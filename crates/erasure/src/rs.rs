//! The systematic Reed–Solomon encoder/decoder.

use peerback_gf256::{mul_add_slice, Gf256};

use crate::{ErasureError, Matrix};

/// A Reed–Solomon codec for a fixed geometry of `k` data shards and `m`
/// parity shards (`n = k + m` total, `n <= 256` over GF(2^8)).
///
/// The encoding matrix is the standard systematic construction: an
/// `n × k` Vandermonde matrix multiplied by the inverse of its own top
/// `k × k` block, so rows `0..k` form the identity (data shards pass
/// through unchanged) and any `k` rows remain linearly independent.
///
/// The type is cheap to clone and immutable after construction, so it can
/// be shared freely between threads.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data_shards: usize,
    parity_shards: usize,
    /// Full `n × k` encoding matrix (top block = identity).
    encode_matrix: Matrix,
}

impl ReedSolomon {
    /// Creates a codec for `k` data + `m` parity shards.
    ///
    /// # Errors
    ///
    /// * [`ErasureError::ZeroDataShards`] if `k == 0`.
    /// * [`ErasureError::TooManyShards`] if `k + m > 256`.
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<Self, ErasureError> {
        if data_shards == 0 {
            return Err(ErasureError::ZeroDataShards);
        }
        let total = data_shards + parity_shards;
        if total > 256 {
            return Err(ErasureError::TooManyShards { requested: total });
        }
        let vandermonde = Matrix::vandermonde(total, data_shards);
        let top = vandermonde.submatrix(0..data_shards, 0..data_shards);
        let top_inv = top
            .inverse()
            .expect("top Vandermonde block is always invertible");
        let encode_matrix = vandermonde.multiply(&top_inv);
        Ok(ReedSolomon {
            data_shards,
            parity_shards,
            encode_matrix,
        })
    }

    /// Creates the paper's headline geometry: `k = 128`, `m = 128`.
    pub fn paper_default() -> Self {
        ReedSolomon::new(128, 128).expect("128 + 128 fits in GF(2^8)")
    }

    /// Number of data shards `k`.
    pub fn data_shards(&self) -> usize {
        self.data_shards
    }

    /// Number of parity shards `m`.
    pub fn parity_shards(&self) -> usize {
        self.parity_shards
    }

    /// Total shard count `n = k + m`.
    pub fn total_shards(&self) -> usize {
        self.data_shards + self.parity_shards
    }

    /// The row of the encoding matrix for shard `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n`.
    pub fn coefficients(&self, index: usize) -> &[Gf256] {
        self.encode_matrix.row(index)
    }

    fn check_data(&self, data: &[impl AsRef<[u8]>]) -> Result<usize, ErasureError> {
        if data.len() != self.data_shards {
            return Err(ErasureError::WrongShardCount {
                expected: self.data_shards,
                actual: data.len(),
            });
        }
        let len = data[0].as_ref().len();
        if data.iter().any(|s| s.as_ref().len() != len) {
            return Err(ErasureError::ShardLengthMismatch);
        }
        Ok(len)
    }

    /// Encodes `k` data shards into `m` parity shards.
    ///
    /// The data shards themselves are shards `0..k` of the code word; the
    /// returned vector holds shards `k..n`.
    ///
    /// # Errors
    ///
    /// [`ErasureError::WrongShardCount`] or
    /// [`ErasureError::ShardLengthMismatch`] on malformed input.
    pub fn encode(&self, data: &[impl AsRef<[u8]>]) -> Result<Vec<Vec<u8>>, ErasureError> {
        let len = self.check_data(data)?;
        let mut parity = vec![vec![0u8; len]; self.parity_shards];
        for (p, out) in parity.iter_mut().enumerate() {
            let row = self.encode_matrix.row(self.data_shards + p);
            for (c, shard) in data.iter().enumerate() {
                mul_add_slice(out, shard.as_ref(), row[c].value());
            }
        }
        Ok(parity)
    }

    /// Computes the single shard at `index` directly from the data shards
    /// (used by the repair path to regenerate exactly the missing blocks).
    ///
    /// # Errors
    ///
    /// Same input validation as [`encode`](Self::encode), plus
    /// [`ErasureError::IndexOutOfRange`].
    pub fn shard_at(
        &self,
        data: &[impl AsRef<[u8]>],
        index: usize,
    ) -> Result<Vec<u8>, ErasureError> {
        let len = self.check_data(data)?;
        if index >= self.total_shards() {
            return Err(ErasureError::IndexOutOfRange {
                index,
                total: self.total_shards(),
            });
        }
        let row = self.encode_matrix.row(index);
        let mut out = vec![0u8; len];
        for (c, shard) in data.iter().enumerate() {
            mul_add_slice(&mut out, shard.as_ref(), row[c].value());
        }
        Ok(out)
    }

    fn validate_survivors(
        &self,
        shards: &[(usize, impl AsRef<[u8]>)],
        shard_len: usize,
    ) -> Result<(), ErasureError> {
        if shards.len() < self.data_shards {
            return Err(ErasureError::NotEnoughShards {
                available: shards.len(),
                needed: self.data_shards,
            });
        }
        let mut seen = [false; 256];
        for (index, shard) in shards {
            if *index >= self.total_shards() {
                return Err(ErasureError::IndexOutOfRange {
                    index: *index,
                    total: self.total_shards(),
                });
            }
            if seen[*index] {
                return Err(ErasureError::DuplicateIndex { index: *index });
            }
            seen[*index] = true;
            if shard.as_ref().len() != shard_len {
                return Err(ErasureError::ShardLengthMismatch);
            }
        }
        Ok(())
    }

    /// Reconstructs the `k` original data shards from **any** `k` (or
    /// more) surviving shards, supplied as `(shard_index, bytes)` pairs in
    /// any order. Exactly the first `k` supplied shards are used.
    ///
    /// # Errors
    ///
    /// [`ErasureError::NotEnoughShards`] when fewer than `k` survive, plus
    /// the validation errors of [`encode`](Self::encode).
    pub fn reconstruct_data(
        &self,
        shards: &[(usize, impl AsRef<[u8]>)],
        shard_len: usize,
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        self.validate_survivors(shards, shard_len)?;
        let used = &shards[..self.data_shards];

        // Fast path: if the k survivors happen to all be data shards we
        // can copy them straight out without any matrix work.
        if used.iter().all(|(i, _)| *i < self.data_shards) {
            let mut data = vec![Vec::new(); self.data_shards];
            for (index, shard) in used {
                data[*index] = shard.as_ref().to_vec();
            }
            if data.iter().all(|d| !d.is_empty() || shard_len == 0) {
                // All k distinct data shards present.
                return Ok(data);
            }
        }

        let rows: Vec<usize> = used.iter().map(|(i, _)| *i).collect();
        let decode = self.encode_matrix.select_rows(&rows).inverse()?;
        let mut data = vec![vec![0u8; shard_len]; self.data_shards];
        for (r, out) in data.iter_mut().enumerate() {
            for (c, (_, shard)) in used.iter().enumerate() {
                mul_add_slice(out, shard.as_ref(), decode.get(r, c).value());
            }
        }
        Ok(data)
    }

    /// Regenerates the shards at `wanted` indices from any `k` survivors:
    /// the repair operation of the paper's §2.2.3 (download `k` blocks,
    /// decode, re-encode the `d` missing blocks).
    ///
    /// # Errors
    ///
    /// As [`reconstruct_data`](Self::reconstruct_data), plus
    /// [`ErasureError::IndexOutOfRange`] for bad `wanted` indices.
    pub fn reconstruct_shards(
        &self,
        shards: &[(usize, impl AsRef<[u8]>)],
        shard_len: usize,
        wanted: &[usize],
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        for &w in wanted {
            if w >= self.total_shards() {
                return Err(ErasureError::IndexOutOfRange {
                    index: w,
                    total: self.total_shards(),
                });
            }
        }
        let data = self.reconstruct_data(shards, shard_len)?;
        wanted.iter().map(|&w| self.shard_at(&data, w)).collect()
    }

    /// Verifies that a complete shard set (`n` shards, index order) is
    /// consistent: every parity shard equals the encoding of the data
    /// shards.
    ///
    /// # Errors
    ///
    /// Validation errors as for [`encode`](Self::encode).
    pub fn verify(&self, shards: &[impl AsRef<[u8]>]) -> Result<bool, ErasureError> {
        if shards.len() != self.total_shards() {
            return Err(ErasureError::WrongShardCount {
                expected: self.total_shards(),
                actual: shards.len(),
            });
        }
        let parity = self.encode(&shards[..self.data_shards])?;
        Ok(parity
            .iter()
            .zip(&shards[self.data_shards..])
            .all(|(computed, given)| computed.as_slice() == given.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 31 + j * 7 + 13) % 251) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn geometry_validation() {
        assert_eq!(
            ReedSolomon::new(0, 4).unwrap_err(),
            ErasureError::ZeroDataShards
        );
        assert_eq!(
            ReedSolomon::new(200, 100).unwrap_err(),
            ErasureError::TooManyShards { requested: 300 }
        );
        assert!(ReedSolomon::new(128, 128).is_ok());
        assert!(ReedSolomon::new(256, 0).is_ok());
        assert!(ReedSolomon::new(1, 255).is_ok());
    }

    #[test]
    fn encoding_matrix_is_systematic() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        for r in 0..5 {
            for c in 0..5 {
                let expect = if r == c { Gf256::ONE } else { Gf256::ZERO };
                assert_eq!(rs.coefficients(r)[c], expect);
            }
        }
    }

    #[test]
    fn round_trip_with_all_data_shards() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 32);
        let survivors: Vec<(usize, Vec<u8>)> = data.iter().cloned().enumerate().collect();
        let out = rs.reconstruct_data(&survivors, 32).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn round_trip_with_parity_only() {
        let rs = ReedSolomon::new(3, 3).unwrap();
        let data = sample_data(3, 16);
        let parity = rs.encode(&data).unwrap();
        let survivors: Vec<(usize, Vec<u8>)> = parity
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, s)| (i + 3, s))
            .collect();
        let out = rs.reconstruct_data(&survivors, 16).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn every_k_subset_recovers_small_geometry() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 8);
        let parity = rs.encode(&data).unwrap();
        let mut all: Vec<Vec<u8>> = data.clone();
        all.extend(parity);

        let n = rs.total_shards();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let survivors = vec![
                        (a, all[a].clone()),
                        (b, all[b].clone()),
                        (c, all[c].clone()),
                    ];
                    let out = rs.reconstruct_data(&survivors, 8).unwrap();
                    assert_eq!(out, data, "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn paper_geometry_survives_m_failures() {
        // k = 128, m = 128: losing any 128 shards must be recoverable.
        let rs = ReedSolomon::paper_default();
        let data = sample_data(128, 4);
        let parity = rs.encode(&data).unwrap();
        let mut all = data.clone();
        all.extend(parity);

        // Take an adversarial survivor pattern: every second shard.
        let survivors: Vec<(usize, Vec<u8>)> =
            (0..256).step_by(2).map(|i| (i, all[i].clone())).collect();
        assert_eq!(survivors.len(), 128);
        let out = rs.reconstruct_data(&survivors, 4).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn shard_at_matches_encode() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let data = sample_data(4, 24);
        let parity = rs.encode(&data).unwrap();
        for i in 0..4 {
            assert_eq!(rs.shard_at(&data, i).unwrap(), data[i], "data shard {i}");
        }
        for (p, expect) in parity.iter().enumerate() {
            assert_eq!(&rs.shard_at(&data, 4 + p).unwrap(), expect, "parity {p}");
        }
        assert!(matches!(
            rs.shard_at(&data, 7),
            Err(ErasureError::IndexOutOfRange { index: 7, total: 7 })
        ));
    }

    #[test]
    fn reconstruct_shards_regenerates_missing_blocks() {
        let rs = ReedSolomon::new(4, 4).unwrap();
        let data = sample_data(4, 12);
        let parity = rs.encode(&data).unwrap();
        let mut all = data.clone();
        all.extend(parity.clone());

        // Lose shards 1, 5, 6; repair from {0, 2, 3, 7}.
        let survivors = vec![
            (0usize, all[0].clone()),
            (2, all[2].clone()),
            (3, all[3].clone()),
            (7, all[7].clone()),
        ];
        let repaired = rs.reconstruct_shards(&survivors, 12, &[1, 5, 6]).unwrap();
        assert_eq!(repaired[0], all[1]);
        assert_eq!(repaired[1], all[5]);
        assert_eq!(repaired[2], all[6]);
    }

    #[test]
    fn verify_detects_corruption() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 10);
        let parity = rs.encode(&data).unwrap();
        let mut all = data;
        all.extend(parity);
        assert!(rs.verify(&all).unwrap());
        all[5][3] ^= 0x40;
        assert!(!rs.verify(&all).unwrap());
    }

    #[test]
    fn input_validation_errors() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let bad_count = sample_data(3, 8);
        assert!(matches!(
            rs.encode(&bad_count),
            Err(ErasureError::WrongShardCount {
                expected: 4,
                actual: 3
            })
        ));

        let mut bad_len = sample_data(4, 8);
        bad_len[2].pop();
        assert!(matches!(
            rs.encode(&bad_len),
            Err(ErasureError::ShardLengthMismatch)
        ));

        let too_few: Vec<(usize, Vec<u8>)> = vec![(0, vec![0; 8]); 1];
        assert!(matches!(
            rs.reconstruct_data(&too_few, 8),
            Err(ErasureError::NotEnoughShards {
                available: 1,
                needed: 4
            })
        ));

        let dup: Vec<(usize, Vec<u8>)> = vec![
            (0, vec![0; 8]),
            (0, vec![0; 8]),
            (1, vec![0; 8]),
            (2, vec![0; 8]),
        ];
        assert!(matches!(
            rs.reconstruct_data(&dup, 8),
            Err(ErasureError::DuplicateIndex { index: 0 })
        ));

        let out_of_range: Vec<(usize, Vec<u8>)> = vec![
            (0, vec![0; 8]),
            (1, vec![0; 8]),
            (2, vec![0; 8]),
            (9, vec![0; 8]),
        ];
        assert!(matches!(
            rs.reconstruct_data(&out_of_range, 8),
            Err(ErasureError::IndexOutOfRange { index: 9, total: 6 })
        ));
    }

    #[test]
    fn zero_length_shards_round_trip() {
        let rs = ReedSolomon::new(2, 2).unwrap();
        let data = vec![vec![], vec![]];
        let parity = rs.encode(&data).unwrap();
        assert_eq!(parity, vec![Vec::<u8>::new(), Vec::new()]);
        let survivors: Vec<(usize, Vec<u8>)> = vec![(2, vec![]), (3, vec![])];
        let out = rs.reconstruct_data(&survivors, 0).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn pure_replication_geometry_k1() {
        // k = 1 degenerates to replication: every shard equals the data.
        let rs = ReedSolomon::new(1, 3).unwrap();
        let data = vec![vec![1u8, 2, 3]];
        let parity = rs.encode(&data).unwrap();
        for p in &parity {
            assert_eq!(p, &data[0]);
        }
    }
}
