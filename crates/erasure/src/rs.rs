//! The systematic Reed–Solomon encoder/decoder.

use std::sync::Arc;

use peerback_gf256::{mul_add_slice, Gf256};

use crate::{ErasureError, Matrix};

/// A Reed–Solomon codec for a fixed geometry of `k` data shards and `m`
/// parity shards (`n = k + m` total, `n <= 256` over GF(2^8)).
///
/// The encoding matrix is the standard systematic construction: an
/// `n × k` Vandermonde matrix multiplied by the inverse of its own top
/// `k × k` block, so rows `0..k` form the identity (data shards pass
/// through unchanged) and any `k` rows remain linearly independent.
///
/// The matrix and the flattened parity coefficient rows live behind an
/// `Arc`, so cloning a codec is two reference-count bumps — cheap enough
/// to hand one to every worker or pipeline instead of rebuilding the
/// Vandermonde construction per code word. The type is immutable after
/// construction and freely shareable between threads.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data_shards: usize,
    parity_shards: usize,
    /// Full `n × k` encoding matrix (top block = identity).
    encode_matrix: Arc<Matrix>,
    /// The parity rows of `encode_matrix` as raw bytes (`m × k`,
    /// row-major) — the form the streaming encoder consumes without
    /// per-call conversion.
    parity_rows: Arc<[u8]>,
}

impl ReedSolomon {
    /// Creates a codec for `k` data + `m` parity shards.
    ///
    /// # Errors
    ///
    /// * [`ErasureError::ZeroDataShards`] if `k == 0`.
    /// * [`ErasureError::TooManyShards`] if `k + m > 256`.
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<Self, ErasureError> {
        if data_shards == 0 {
            return Err(ErasureError::ZeroDataShards);
        }
        let total = data_shards + parity_shards;
        if total > 256 {
            return Err(ErasureError::TooManyShards { requested: total });
        }
        let vandermonde = Matrix::vandermonde(total, data_shards);
        let top = vandermonde.submatrix(0..data_shards, 0..data_shards);
        let top_inv = top
            .inverse()
            .expect("top Vandermonde block is always invertible");
        let encode_matrix = vandermonde.multiply(&top_inv);
        let parity_rows: Arc<[u8]> = (data_shards..total)
            .flat_map(|r| encode_matrix.row(r).iter().map(|g| g.value()))
            .collect();
        Ok(ReedSolomon {
            data_shards,
            parity_shards,
            encode_matrix: Arc::new(encode_matrix),
            parity_rows,
        })
    }

    /// Creates the paper's headline geometry: `k = 128`, `m = 128`.
    pub fn paper_default() -> Self {
        ReedSolomon::new(128, 128).expect("128 + 128 fits in GF(2^8)")
    }

    /// Number of data shards `k`.
    pub fn data_shards(&self) -> usize {
        self.data_shards
    }

    /// Number of parity shards `m`.
    pub fn parity_shards(&self) -> usize {
        self.parity_shards
    }

    /// Total shard count `n = k + m`.
    pub fn total_shards(&self) -> usize {
        self.data_shards + self.parity_shards
    }

    /// The row of the encoding matrix for shard `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n`.
    pub fn coefficients(&self, index: usize) -> &[Gf256] {
        self.encode_matrix.row(index)
    }

    fn check_data(&self, data: &[impl AsRef<[u8]>]) -> Result<usize, ErasureError> {
        if data.len() != self.data_shards {
            return Err(ErasureError::WrongShardCount {
                expected: self.data_shards,
                actual: data.len(),
            });
        }
        let len = data[0].as_ref().len();
        if data.iter().any(|s| s.as_ref().len() != len) {
            return Err(ErasureError::ShardLengthMismatch);
        }
        Ok(len)
    }

    /// Encodes `k` data shards into `m` parity shards.
    ///
    /// The data shards themselves are shards `0..k` of the code word; the
    /// returned vector holds shards `k..n`.
    ///
    /// # Errors
    ///
    /// [`ErasureError::WrongShardCount`] or
    /// [`ErasureError::ShardLengthMismatch`] on malformed input.
    pub fn encode(&self, data: &[impl AsRef<[u8]>]) -> Result<Vec<Vec<u8>>, ErasureError> {
        let mut parity = vec![Vec::new(); self.parity_shards];
        self.encode_into(data, &mut parity)?;
        Ok(parity)
    }

    /// Streaming encode into caller-supplied parity buffers.
    ///
    /// Each buffer in `parity` (one per parity shard) is cleared and
    /// resized to the shard length, reusing its existing capacity — a
    /// steady-state caller recycling the same buffers allocates nothing.
    /// The precomputed coefficient rows are applied *shard-major*: each
    /// data shard is read exactly once and folded into every parity
    /// buffer while it is hot in cache.
    ///
    /// # Errors
    ///
    /// [`ErasureError::WrongShardCount`] (for `data` or `parity` of the
    /// wrong length) or [`ErasureError::ShardLengthMismatch`].
    pub fn encode_into(
        &self,
        data: &[impl AsRef<[u8]>],
        parity: &mut [Vec<u8>],
    ) -> Result<(), ErasureError> {
        let len = self.check_data(data)?;
        if parity.len() != self.parity_shards {
            return Err(ErasureError::WrongShardCount {
                expected: self.parity_shards,
                actual: parity.len(),
            });
        }
        for out in parity.iter_mut() {
            out.clear();
            out.resize(len, 0);
        }
        let k = self.data_shards;
        for (c, shard) in data.iter().enumerate() {
            let src = shard.as_ref();
            for (p, out) in parity.iter_mut().enumerate() {
                mul_add_slice(out, src, self.parity_rows[p * k + c]);
            }
        }
        Ok(())
    }

    /// Computes the single shard at `index` directly from the data shards
    /// (used by the repair path to regenerate exactly the missing blocks).
    ///
    /// # Errors
    ///
    /// Same input validation as [`encode`](Self::encode), plus
    /// [`ErasureError::IndexOutOfRange`].
    pub fn shard_at(
        &self,
        data: &[impl AsRef<[u8]>],
        index: usize,
    ) -> Result<Vec<u8>, ErasureError> {
        let len = self.check_data(data)?;
        if index >= self.total_shards() {
            return Err(ErasureError::IndexOutOfRange {
                index,
                total: self.total_shards(),
            });
        }
        let row = self.encode_matrix.row(index);
        let mut out = vec![0u8; len];
        for (c, shard) in data.iter().enumerate() {
            mul_add_slice(&mut out, shard.as_ref(), row[c].value());
        }
        Ok(out)
    }

    fn validate_survivors(
        &self,
        shards: &[(usize, impl AsRef<[u8]>)],
        shard_len: usize,
    ) -> Result<(), ErasureError> {
        if shards.len() < self.data_shards {
            return Err(ErasureError::NotEnoughShards {
                available: shards.len(),
                needed: self.data_shards,
            });
        }
        let mut seen = [false; 256];
        for (index, shard) in shards {
            if *index >= self.total_shards() {
                return Err(ErasureError::IndexOutOfRange {
                    index: *index,
                    total: self.total_shards(),
                });
            }
            if seen[*index] {
                return Err(ErasureError::DuplicateIndex { index: *index });
            }
            seen[*index] = true;
            if shard.as_ref().len() != shard_len {
                return Err(ErasureError::ShardLengthMismatch);
            }
        }
        Ok(())
    }

    /// Reconstructs the `k` original data shards from **any** `k` (or
    /// more) surviving shards, supplied as `(shard_index, bytes)` pairs in
    /// any order. Exactly the first `k` supplied shards are used.
    ///
    /// # Errors
    ///
    /// [`ErasureError::NotEnoughShards`] when fewer than `k` survive, plus
    /// the validation errors of [`encode`](Self::encode).
    pub fn reconstruct_data(
        &self,
        shards: &[(usize, impl AsRef<[u8]>)],
        shard_len: usize,
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        let mut data = Vec::new();
        self.reconstruct_data_into(shards, shard_len, &mut data)?;
        Ok(data)
    }

    /// Streaming reconstruction into caller-supplied buffers (the reuse
    /// counterpart of [`reconstruct_data`](Self::reconstruct_data), as
    /// [`encode_into`](Self::encode_into) is to [`encode`](Self::encode)).
    ///
    /// `out` is resized to `k` buffers of `shard_len` bytes, reusing
    /// capacity. Equivalent to building a [`DecodePlan`] for these
    /// survivors and applying it once; callers decoding the same
    /// survivor set repeatedly should build the plan themselves and
    /// amortise the matrix inversion.
    ///
    /// # Errors
    ///
    /// As [`reconstruct_data`](Self::reconstruct_data).
    pub fn reconstruct_data_into(
        &self,
        shards: &[(usize, impl AsRef<[u8]>)],
        shard_len: usize,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), ErasureError> {
        self.validate_survivors(shards, shard_len)?;
        let plan = self.decode_plan_validated(shards)?;
        plan.apply(shards, shard_len, out);
        Ok(())
    }

    /// Builds a reusable decode plan for a survivor set, given as the
    /// shard indices that will be supplied (in the same order). The
    /// plan's matrix inversion happens once here; applying the plan is
    /// pure streaming coefficient work.
    ///
    /// # Errors
    ///
    /// As [`reconstruct_data`](Self::reconstruct_data) (not-enough /
    /// out-of-range / duplicate indices, a singular decode matrix).
    pub fn decode_plan(&self, survivors: &[usize]) -> Result<DecodePlan, ErasureError> {
        if survivors.len() < self.data_shards {
            return Err(ErasureError::NotEnoughShards {
                available: survivors.len(),
                needed: self.data_shards,
            });
        }
        let mut seen = [false; 256];
        for &index in survivors {
            if index >= self.total_shards() {
                return Err(ErasureError::IndexOutOfRange {
                    index,
                    total: self.total_shards(),
                });
            }
            if seen[index] {
                return Err(ErasureError::DuplicateIndex { index });
            }
            seen[index] = true;
        }
        self.build_plan(&survivors[..self.data_shards])
    }

    /// Plan construction for already-validated survivors.
    fn decode_plan_validated(
        &self,
        shards: &[(usize, impl AsRef<[u8]>)],
    ) -> Result<DecodePlan, ErasureError> {
        let sources: Vec<usize> = shards[..self.data_shards].iter().map(|(i, _)| *i).collect();
        self.build_plan(&sources)
    }

    fn build_plan(&self, sources: &[usize]) -> Result<DecodePlan, ErasureError> {
        let k = self.data_shards;
        // Fast path: the k survivors are all data shards (necessarily a
        // permutation of 0..k once validated distinct) — reconstruction
        // is a reordered copy, no matrix work at all.
        if sources.iter().all(|&i| i < k) {
            return Ok(DecodePlan {
                data_shards: k,
                sources: sources.to_vec(),
                rows: Vec::new(),
                passthrough: true,
            });
        }
        let decode = self.encode_matrix.select_rows(sources).inverse()?;
        let mut rows = Vec::with_capacity(k * k);
        for r in 0..k {
            rows.extend(decode.row(r).iter().map(|g| g.value()));
        }
        Ok(DecodePlan {
            data_shards: k,
            sources: sources.to_vec(),
            rows,
            passthrough: false,
        })
    }

    /// Regenerates the shards at `wanted` indices from any `k` survivors:
    /// the repair operation of the paper's §2.2.3 (download `k` blocks,
    /// decode, re-encode the `d` missing blocks).
    ///
    /// # Errors
    ///
    /// As [`reconstruct_data`](Self::reconstruct_data), plus
    /// [`ErasureError::IndexOutOfRange`] for bad `wanted` indices.
    pub fn reconstruct_shards(
        &self,
        shards: &[(usize, impl AsRef<[u8]>)],
        shard_len: usize,
        wanted: &[usize],
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        for &w in wanted {
            if w >= self.total_shards() {
                return Err(ErasureError::IndexOutOfRange {
                    index: w,
                    total: self.total_shards(),
                });
            }
        }
        let data = self.reconstruct_data(shards, shard_len)?;
        wanted.iter().map(|&w| self.shard_at(&data, w)).collect()
    }

    /// Verifies that a complete shard set (`n` shards, index order) is
    /// consistent: every parity shard equals the encoding of the data
    /// shards.
    ///
    /// # Errors
    ///
    /// Validation errors as for [`encode`](Self::encode).
    pub fn verify(&self, shards: &[impl AsRef<[u8]>]) -> Result<bool, ErasureError> {
        if shards.len() != self.total_shards() {
            return Err(ErasureError::WrongShardCount {
                expected: self.total_shards(),
                actual: shards.len(),
            });
        }
        let parity = self.encode(&shards[..self.data_shards])?;
        Ok(parity
            .iter()
            .zip(&shards[self.data_shards..])
            .all(|(computed, given)| computed.as_slice() == given.as_ref()))
    }
}

/// A precomputed reconstruction: the inverse of the survivor-row matrix
/// for one fixed survivor set, flattened to raw coefficient bytes.
///
/// Built once by [`ReedSolomon::decode_plan`] (or internally per call by
/// [`ReedSolomon::reconstruct_data_into`]); applying it is pure
/// shard-major streaming over the supplied shards — no matrix algebra,
/// no temporaries, and with recycled output buffers no allocation.
#[derive(Debug, Clone)]
pub struct DecodePlan {
    data_shards: usize,
    /// The `k` shard indices this plan consumes, in supply order.
    sources: Vec<usize>,
    /// `k × k` row-major decode coefficients; empty when `passthrough`.
    rows: Vec<u8>,
    /// All sources are data shards: reconstruction is a reordered copy.
    passthrough: bool,
}

impl DecodePlan {
    /// The shard indices this plan consumes, in the order the shards
    /// must be supplied to [`reconstruct_into`](Self::reconstruct_into).
    pub fn sources(&self) -> &[usize] {
        &self.sources
    }

    /// Whether the plan is a pure copy (all sources are data shards).
    pub fn is_passthrough(&self) -> bool {
        self.passthrough
    }

    /// Reconstructs the `k` data shards into `out`, resizing it to `k`
    /// buffers of `shard_len` bytes (capacity is reused).
    ///
    /// # Errors
    ///
    /// [`ErasureError::ShardLengthMismatch`] if a consumed shard is not
    /// `shard_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the first `k` entries of `shards` do not carry exactly
    /// the indices the plan was built for, in the same order — a plan is
    /// only valid for its own survivor set.
    pub fn reconstruct_into(
        &self,
        shards: &[(usize, impl AsRef<[u8]>)],
        shard_len: usize,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<(), ErasureError> {
        let k = self.data_shards;
        assert!(
            shards.len() >= k
                && shards[..k]
                    .iter()
                    .map(|(i, _)| *i)
                    .eq(self.sources.iter().copied()),
            "decode plan applied to a different survivor set than it was built for"
        );
        if shards[..k]
            .iter()
            .any(|(_, s)| s.as_ref().len() != shard_len)
        {
            return Err(ErasureError::ShardLengthMismatch);
        }
        self.apply(shards, shard_len, out);
        Ok(())
    }

    /// The streaming core; inputs are already validated.
    fn apply(
        &self,
        shards: &[(usize, impl AsRef<[u8]>)],
        shard_len: usize,
        out: &mut Vec<Vec<u8>>,
    ) {
        let k = self.data_shards;
        out.resize_with(k, Vec::new);
        out.truncate(k);
        if self.passthrough {
            for (&source, (_, shard)) in self.sources.iter().zip(shards) {
                out[source].clear();
                out[source].extend_from_slice(shard.as_ref());
            }
            return;
        }
        for buf in out.iter_mut() {
            buf.clear();
            buf.resize(shard_len, 0);
        }
        for (c, (_, shard)) in shards[..k].iter().enumerate() {
            let src = shard.as_ref();
            for (r, buf) in out.iter_mut().enumerate() {
                mul_add_slice(buf, src, self.rows[r * k + c]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 31 + j * 7 + 13) % 251) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn geometry_validation() {
        assert_eq!(
            ReedSolomon::new(0, 4).unwrap_err(),
            ErasureError::ZeroDataShards
        );
        assert_eq!(
            ReedSolomon::new(200, 100).unwrap_err(),
            ErasureError::TooManyShards { requested: 300 }
        );
        assert!(ReedSolomon::new(128, 128).is_ok());
        assert!(ReedSolomon::new(256, 0).is_ok());
        assert!(ReedSolomon::new(1, 255).is_ok());
    }

    #[test]
    fn encoding_matrix_is_systematic() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        for r in 0..5 {
            for c in 0..5 {
                let expect = if r == c { Gf256::ONE } else { Gf256::ZERO };
                assert_eq!(rs.coefficients(r)[c], expect);
            }
        }
    }

    #[test]
    fn round_trip_with_all_data_shards() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 32);
        let survivors: Vec<(usize, Vec<u8>)> = data.iter().cloned().enumerate().collect();
        let out = rs.reconstruct_data(&survivors, 32).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn round_trip_with_parity_only() {
        let rs = ReedSolomon::new(3, 3).unwrap();
        let data = sample_data(3, 16);
        let parity = rs.encode(&data).unwrap();
        let survivors: Vec<(usize, Vec<u8>)> = parity
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, s)| (i + 3, s))
            .collect();
        let out = rs.reconstruct_data(&survivors, 16).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn every_k_subset_recovers_small_geometry() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 8);
        let parity = rs.encode(&data).unwrap();
        let mut all: Vec<Vec<u8>> = data.clone();
        all.extend(parity);

        let n = rs.total_shards();
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let survivors = vec![
                        (a, all[a].clone()),
                        (b, all[b].clone()),
                        (c, all[c].clone()),
                    ];
                    let out = rs.reconstruct_data(&survivors, 8).unwrap();
                    assert_eq!(out, data, "subset {a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn paper_geometry_survives_m_failures() {
        // k = 128, m = 128: losing any 128 shards must be recoverable.
        let rs = ReedSolomon::paper_default();
        let data = sample_data(128, 4);
        let parity = rs.encode(&data).unwrap();
        let mut all = data.clone();
        all.extend(parity);

        // Take an adversarial survivor pattern: every second shard.
        let survivors: Vec<(usize, Vec<u8>)> =
            (0..256).step_by(2).map(|i| (i, all[i].clone())).collect();
        assert_eq!(survivors.len(), 128);
        let out = rs.reconstruct_data(&survivors, 4).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn shard_at_matches_encode() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let data = sample_data(4, 24);
        let parity = rs.encode(&data).unwrap();
        for i in 0..4 {
            assert_eq!(rs.shard_at(&data, i).unwrap(), data[i], "data shard {i}");
        }
        for (p, expect) in parity.iter().enumerate() {
            assert_eq!(&rs.shard_at(&data, 4 + p).unwrap(), expect, "parity {p}");
        }
        assert!(matches!(
            rs.shard_at(&data, 7),
            Err(ErasureError::IndexOutOfRange { index: 7, total: 7 })
        ));
    }

    #[test]
    fn reconstruct_shards_regenerates_missing_blocks() {
        let rs = ReedSolomon::new(4, 4).unwrap();
        let data = sample_data(4, 12);
        let parity = rs.encode(&data).unwrap();
        let mut all = data.clone();
        all.extend(parity.clone());

        // Lose shards 1, 5, 6; repair from {0, 2, 3, 7}.
        let survivors = vec![
            (0usize, all[0].clone()),
            (2, all[2].clone()),
            (3, all[3].clone()),
            (7, all[7].clone()),
        ];
        let repaired = rs.reconstruct_shards(&survivors, 12, &[1, 5, 6]).unwrap();
        assert_eq!(repaired[0], all[1]);
        assert_eq!(repaired[1], all[5]);
        assert_eq!(repaired[2], all[6]);
    }

    #[test]
    fn verify_detects_corruption() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 10);
        let parity = rs.encode(&data).unwrap();
        let mut all = data;
        all.extend(parity);
        assert!(rs.verify(&all).unwrap());
        all[5][3] ^= 0x40;
        assert!(!rs.verify(&all).unwrap());
    }

    #[test]
    fn input_validation_errors() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let bad_count = sample_data(3, 8);
        assert!(matches!(
            rs.encode(&bad_count),
            Err(ErasureError::WrongShardCount {
                expected: 4,
                actual: 3
            })
        ));

        let mut bad_len = sample_data(4, 8);
        bad_len[2].pop();
        assert!(matches!(
            rs.encode(&bad_len),
            Err(ErasureError::ShardLengthMismatch)
        ));

        let too_few: Vec<(usize, Vec<u8>)> = vec![(0, vec![0; 8]); 1];
        assert!(matches!(
            rs.reconstruct_data(&too_few, 8),
            Err(ErasureError::NotEnoughShards {
                available: 1,
                needed: 4
            })
        ));

        let dup: Vec<(usize, Vec<u8>)> = vec![
            (0, vec![0; 8]),
            (0, vec![0; 8]),
            (1, vec![0; 8]),
            (2, vec![0; 8]),
        ];
        assert!(matches!(
            rs.reconstruct_data(&dup, 8),
            Err(ErasureError::DuplicateIndex { index: 0 })
        ));

        let out_of_range: Vec<(usize, Vec<u8>)> = vec![
            (0, vec![0; 8]),
            (1, vec![0; 8]),
            (2, vec![0; 8]),
            (9, vec![0; 8]),
        ];
        assert!(matches!(
            rs.reconstruct_data(&out_of_range, 8),
            Err(ErasureError::IndexOutOfRange { index: 9, total: 6 })
        ));
    }

    #[test]
    fn zero_length_shards_round_trip() {
        let rs = ReedSolomon::new(2, 2).unwrap();
        let data = vec![vec![], vec![]];
        let parity = rs.encode(&data).unwrap();
        assert_eq!(parity, vec![Vec::<u8>::new(), Vec::new()]);
        let survivors: Vec<(usize, Vec<u8>)> = vec![(2, vec![]), (3, vec![])];
        let out = rs.reconstruct_data(&survivors, 0).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn encode_into_reuses_buffers_and_matches_encode() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let data = sample_data(4, 40);
        let fresh = rs.encode(&data).unwrap();

        // Recycled buffers with stale contents and excess capacity.
        let mut parity: Vec<Vec<u8>> = (0..3).map(|_| vec![0xAAu8; 100]).collect();
        let caps: Vec<usize> = parity.iter().map(Vec::capacity).collect();
        rs.encode_into(&data, &mut parity).unwrap();
        assert_eq!(parity, fresh);
        for (p, cap) in parity.iter().zip(caps) {
            assert_eq!(p.capacity(), cap, "capacity must be reused");
        }

        // Wrong parity buffer count is rejected.
        let mut short = vec![Vec::new(); 2];
        assert!(matches!(
            rs.encode_into(&data, &mut short),
            Err(ErasureError::WrongShardCount {
                expected: 3,
                actual: 2
            })
        ));
    }

    #[test]
    fn decode_plan_reconstructs_and_is_reusable() {
        let rs = ReedSolomon::new(4, 4).unwrap();
        let data = sample_data(4, 24);
        let parity = rs.encode(&data).unwrap();
        let mut all = data.clone();
        all.extend(parity);

        // A mixed survivor set, deliberately out of order.
        let survivors: Vec<(usize, Vec<u8>)> = [6usize, 0, 5, 3]
            .iter()
            .map(|&i| (i, all[i].clone()))
            .collect();
        let indices: Vec<usize> = survivors.iter().map(|(i, _)| *i).collect();
        let plan = rs.decode_plan(&indices).unwrap();
        assert!(!plan.is_passthrough());
        assert_eq!(plan.sources(), &indices[..]);

        let mut out = vec![vec![0xEEu8; 3]; 7]; // wrong shape: gets normalised
        plan.reconstruct_into(&survivors, 24, &mut out).unwrap();
        assert_eq!(out, data);

        // Reuse the plan on different bytes with the same survivor set.
        let data2 = sample_data(4, 24)
            .into_iter()
            .map(|mut s| {
                for b in &mut s {
                    *b ^= 0x5f;
                }
                s
            })
            .collect::<Vec<_>>();
        let parity2 = rs.encode(&data2).unwrap();
        let mut all2 = data2.clone();
        all2.extend(parity2);
        let survivors2: Vec<(usize, Vec<u8>)> = [6usize, 0, 5, 3]
            .iter()
            .map(|&i| (i, all2[i].clone()))
            .collect();
        plan.reconstruct_into(&survivors2, 24, &mut out).unwrap();
        assert_eq!(out, data2);
    }

    #[test]
    fn decode_plan_passthrough_for_all_data_survivors() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 9);
        let survivors: Vec<(usize, Vec<u8>)> = [2usize, 0, 1]
            .iter()
            .map(|&i| (i, data[i].clone()))
            .collect();
        let plan = rs.decode_plan(&[2, 0, 1]).unwrap();
        assert!(plan.is_passthrough());
        let mut out = Vec::new();
        plan.reconstruct_into(&survivors, 9, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    #[should_panic(expected = "different survivor set")]
    fn decode_plan_rejects_other_survivors() {
        let rs = ReedSolomon::new(2, 2).unwrap();
        let plan = rs.decode_plan(&[0, 2]).unwrap();
        let wrong: Vec<(usize, Vec<u8>)> = vec![(0, vec![0; 4]), (3, vec![0; 4])];
        let _ = plan.reconstruct_into(&wrong, 4, &mut Vec::new());
    }

    #[test]
    fn decode_plan_validation_errors() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        assert!(matches!(
            rs.decode_plan(&[0, 1]),
            Err(ErasureError::NotEnoughShards {
                available: 2,
                needed: 3
            })
        ));
        assert!(matches!(
            rs.decode_plan(&[0, 1, 9]),
            Err(ErasureError::IndexOutOfRange { index: 9, total: 5 })
        ));
        assert!(matches!(
            rs.decode_plan(&[0, 1, 1]),
            Err(ErasureError::DuplicateIndex { index: 1 })
        ));
    }

    #[test]
    fn pure_replication_geometry_k1() {
        // k = 1 degenerates to replication: every shard equals the data.
        let rs = ReedSolomon::new(1, 3).unwrap();
        let data = vec![vec![1u8, 2, 3]];
        let parity = rs.encode(&data).unwrap();
        for p in &parity {
            assert_eq!(p, &data[0]);
        }
    }
}
