//! Error type for the erasure codec.

use core::fmt;

/// Errors returned by the Reed–Solomon codec and shard containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErasureError {
    /// `k` must be at least 1.
    ZeroDataShards,
    /// `n = k + m` may not exceed the field size (256 for GF(2^8)).
    TooManyShards {
        /// Requested total shard count.
        requested: usize,
    },
    /// Encoding/decoding input had the wrong number of shards.
    WrongShardCount {
        /// Number of shards expected by the codec geometry.
        expected: usize,
        /// Number of shards actually supplied.
        actual: usize,
    },
    /// Supplied shards have inconsistent lengths.
    ShardLengthMismatch,
    /// A shard index is outside `0..n`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Total shard count `n`.
        total: usize,
    },
    /// The same shard index was supplied twice.
    DuplicateIndex {
        /// The duplicated index.
        index: usize,
    },
    /// Fewer than `k` shards are available: the data is unrecoverable.
    NotEnoughShards {
        /// Shards available.
        available: usize,
        /// Shards needed (`k`).
        needed: usize,
    },
    /// Matrix inversion failed; with distinct Vandermonde evaluation points
    /// this indicates corrupted input rather than a geometry problem.
    SingularMatrix,
}

impl fmt::Display for ErasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErasureError::ZeroDataShards => write!(f, "k (data shards) must be at least 1"),
            ErasureError::TooManyShards { requested } => write!(
                f,
                "total shard count {requested} exceeds field size 256 of GF(2^8)"
            ),
            ErasureError::WrongShardCount { expected, actual } => {
                write!(f, "expected {expected} shards, got {actual}")
            }
            ErasureError::ShardLengthMismatch => write!(f, "shards have inconsistent lengths"),
            ErasureError::IndexOutOfRange { index, total } => {
                write!(f, "shard index {index} out of range for {total} shards")
            }
            ErasureError::DuplicateIndex { index } => {
                write!(f, "shard index {index} supplied more than once")
            }
            ErasureError::NotEnoughShards { available, needed } => write!(
                f,
                "only {available} shards available but {needed} are needed to decode"
            ),
            ErasureError::SingularMatrix => write!(f, "decoding matrix is singular"),
        }
    }
}

impl std::error::Error for ErasureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ErasureError, &str)> = vec![
            (ErasureError::ZeroDataShards, "at least 1"),
            (ErasureError::TooManyShards { requested: 300 }, "300"),
            (
                ErasureError::WrongShardCount {
                    expected: 4,
                    actual: 3,
                },
                "expected 4",
            ),
            (ErasureError::ShardLengthMismatch, "inconsistent"),
            (
                ErasureError::IndexOutOfRange { index: 9, total: 6 },
                "index 9",
            ),
            (ErasureError::DuplicateIndex { index: 2 }, "index 2"),
            (
                ErasureError::NotEnoughShards {
                    available: 3,
                    needed: 4,
                },
                "only 3",
            ),
            (ErasureError::SingularMatrix, "singular"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }
}
