//! Shard containers used by the backup data plane.

use crate::{ErasureError, ReedSolomon};

/// Index of a shard within a code word (`0..n`).
pub type ShardIndex = usize;

/// One erasure-coded block together with its position in the code word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Position of this shard in the code word.
    pub index: ShardIndex,
    /// Shard payload.
    pub bytes: Vec<u8>,
}

impl Shard {
    /// Creates a shard.
    pub fn new(index: ShardIndex, bytes: Vec<u8>) -> Self {
        Shard { index, bytes }
    }
}

/// A partially-present set of shards for one code word.
///
/// This is the owner-side view of an archive's blocks as they live in the
/// network: slots fill as blocks are fetched and empty as partners vanish.
/// It answers the two questions the maintenance loop keeps asking — *can I
/// still decode?* and *which indices must a repair regenerate?*
#[derive(Debug, Clone)]
pub struct ShardSet {
    shard_len: usize,
    slots: Vec<Option<Vec<u8>>>,
}

impl ShardSet {
    /// Creates an empty set for `total` shards of length `shard_len`.
    pub fn new(total: usize, shard_len: usize) -> Self {
        ShardSet {
            shard_len,
            slots: vec![None; total],
        }
    }

    /// Builds a full set from `n` complete shards.
    ///
    /// # Errors
    ///
    /// [`ErasureError::ShardLengthMismatch`] if lengths disagree.
    pub fn from_complete(shards: Vec<Vec<u8>>) -> Result<Self, ErasureError> {
        let shard_len = shards.first().map_or(0, Vec::len);
        if shards.iter().any(|s| s.len() != shard_len) {
            return Err(ErasureError::ShardLengthMismatch);
        }
        Ok(ShardSet {
            shard_len,
            slots: shards.into_iter().map(Some).collect(),
        })
    }

    /// Total slot count `n`.
    pub fn total(&self) -> usize {
        self.slots.len()
    }

    /// Length in bytes of each shard.
    pub fn shard_len(&self) -> usize {
        self.shard_len
    }

    /// Number of shards currently present.
    pub fn present(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Number of missing shards.
    pub fn missing(&self) -> usize {
        self.total() - self.present()
    }

    /// Whether the slot at `index` holds a shard.
    pub fn has(&self, index: ShardIndex) -> bool {
        self.slots.get(index).is_some_and(Option::is_some)
    }

    /// Inserts (or replaces) a shard.
    ///
    /// # Errors
    ///
    /// [`ErasureError::IndexOutOfRange`] or
    /// [`ErasureError::ShardLengthMismatch`].
    pub fn insert(&mut self, shard: Shard) -> Result<(), ErasureError> {
        if shard.index >= self.total() {
            return Err(ErasureError::IndexOutOfRange {
                index: shard.index,
                total: self.total(),
            });
        }
        if shard.bytes.len() != self.shard_len {
            return Err(ErasureError::ShardLengthMismatch);
        }
        self.slots[shard.index] = Some(shard.bytes);
        Ok(())
    }

    /// Removes the shard at `index`, returning it if present.
    pub fn remove(&mut self, index: ShardIndex) -> Option<Vec<u8>> {
        self.slots.get_mut(index).and_then(Option::take)
    }

    /// Indices with no shard — the `d` blocks a repair must regenerate.
    pub fn missing_indices(&self) -> Vec<ShardIndex> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// Present shards as `(index, bytes)` pairs for the decoder.
    pub fn present_shards(&self) -> Vec<(ShardIndex, &[u8])> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|b| (i, b.as_slice())))
            .collect()
    }

    /// True when at least `k` shards are present for the given codec.
    pub fn decodable(&self, rs: &ReedSolomon) -> bool {
        self.present() >= rs.data_shards()
    }

    /// Runs a full repair: decodes from the present shards and fills every
    /// missing slot (paper §2.2.3: download `k`, re-encode the `d` missing
    /// blocks). Returns the regenerated shards.
    ///
    /// # Errors
    ///
    /// [`ErasureError::NotEnoughShards`] when fewer than `k` are present.
    pub fn repair(&mut self, rs: &ReedSolomon) -> Result<Vec<Shard>, ErasureError> {
        let wanted = self.missing_indices();
        if wanted.is_empty() {
            return Ok(Vec::new());
        }
        let regenerated = {
            let present = self.present_shards();
            rs.reconstruct_shards(&present, self.shard_len, &wanted)?
        };
        let mut out = Vec::with_capacity(wanted.len());
        for (index, bytes) in wanted.into_iter().zip(regenerated) {
            self.slots[index] = Some(bytes.clone());
            out.push(Shard::new(index, bytes));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> ReedSolomon {
        ReedSolomon::new(3, 2).unwrap()
    }

    fn full_set(rs: &ReedSolomon) -> (ShardSet, Vec<Vec<u8>>) {
        let data: Vec<Vec<u8>> = (0..rs.data_shards())
            .map(|i| vec![i as u8 + 1; 6])
            .collect();
        let mut all = data.clone();
        all.extend(rs.encode(&data).unwrap());
        (ShardSet::from_complete(all).unwrap(), data)
    }

    #[test]
    fn counts_track_insert_and_remove() {
        let mut set = ShardSet::new(5, 4);
        assert_eq!(set.present(), 0);
        assert_eq!(set.missing(), 5);
        set.insert(Shard::new(2, vec![1, 2, 3, 4])).unwrap();
        assert_eq!(set.present(), 1);
        assert!(set.has(2));
        assert!(!set.has(0));
        assert_eq!(set.remove(2), Some(vec![1, 2, 3, 4]));
        assert_eq!(set.remove(2), None);
        assert_eq!(set.present(), 0);
    }

    #[test]
    fn insert_validates_index_and_length() {
        let mut set = ShardSet::new(3, 4);
        assert!(matches!(
            set.insert(Shard::new(3, vec![0; 4])),
            Err(ErasureError::IndexOutOfRange { index: 3, total: 3 })
        ));
        assert!(matches!(
            set.insert(Shard::new(0, vec![0; 5])),
            Err(ErasureError::ShardLengthMismatch)
        ));
    }

    #[test]
    fn from_complete_rejects_ragged_input() {
        assert!(ShardSet::from_complete(vec![vec![1, 2], vec![3]]).is_err());
    }

    #[test]
    fn repair_fills_missing_slots_with_correct_bytes() {
        let rs = codec();
        let (mut set, data) = full_set(&rs);
        let original: Vec<Vec<u8>> = (0..set.total())
            .map(|i| set.present_shards()[i].1.to_vec())
            .collect();

        set.remove(1);
        set.remove(4);
        assert_eq!(set.missing_indices(), vec![1, 4]);
        assert!(set.decodable(&rs));

        let regenerated = set.repair(&rs).unwrap();
        assert_eq!(regenerated.len(), 2);
        assert_eq!(regenerated[0], Shard::new(1, original[1].clone()));
        assert_eq!(regenerated[1], Shard::new(4, original[4].clone()));
        assert_eq!(set.missing(), 0);

        // And the data still decodes to the original.
        let present = set.present_shards();
        let decoded = rs.reconstruct_data(&present, 6).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn repair_with_nothing_missing_is_a_no_op() {
        let rs = codec();
        let (mut set, _) = full_set(&rs);
        assert!(set.repair(&rs).unwrap().is_empty());
    }

    #[test]
    fn repair_below_k_fails() {
        let rs = codec();
        let (mut set, _) = full_set(&rs);
        set.remove(0);
        set.remove(1);
        set.remove(2);
        assert!(!set.decodable(&rs));
        assert!(matches!(
            set.repair(&rs),
            Err(ErasureError::NotEnoughShards {
                available: 2,
                needed: 3
            })
        ));
    }
}
