//! Property-based tests: the "any k of n" guarantee and repair identities.

use proptest::prelude::*;

use peerback_erasure::{ReedSolomon, Shard, ShardSet};

/// Strategy producing a geometry, payload length and a survivor subset.
fn geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    // (k, m, shard_len) — kept small so exhaustive-ish exploration is fast.
    (1usize..=10, 0usize..=10, 0usize..=64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_k_survivors_recover_the_data(
        (k, m, len) in geometry(),
        seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| (seed as usize + i * 31 + j * 7) as u8)
                    .collect()
            })
            .collect();
        let mut all = data.clone();
        all.extend(rs.encode(&data).unwrap());

        // Deterministically pick k survivor indices from the seed.
        let n = k + m;
        let mut indices: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            indices.swap(i, j);
        }
        let survivors: Vec<(usize, Vec<u8>)> =
            indices[..k].iter().map(|&i| (i, all[i].clone())).collect();

        let recovered = rs.reconstruct_data(&survivors, len).unwrap();
        prop_assert_eq!(recovered, data);
    }

    #[test]
    fn repaired_shards_equal_originals(
        (k, m, len) in geometry(),
        seed in any::<u64>(),
    ) {
        prop_assume!(m > 0);
        let rs = ReedSolomon::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| (seed as usize ^ (i * 13 + j)) as u8).collect())
            .collect();
        let mut all = data.clone();
        all.extend(rs.encode(&data).unwrap());

        let mut set = ShardSet::from_complete(all.clone()).unwrap();
        // Remove up to m shards, spread by the seed.
        let n = k + m;
        let mut removed = 0usize;
        let mut state = seed | 1;
        while removed < m {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (state >> 33) as usize % n;
            if set.remove(idx).is_some() {
                removed += 1;
            }
        }

        let regenerated = set.repair(&rs).unwrap();
        for Shard { index, bytes } in regenerated {
            prop_assert_eq!(&bytes, &all[index], "shard {}", index);
        }
        prop_assert!(rs.verify(
            &set.present_shards().iter().map(|(_, b)| b.to_vec()).collect::<Vec<_>>()
        ).unwrap());
    }

    #[test]
    fn shard_at_is_consistent_with_full_encode(
        (k, m, len) in geometry(),
        seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| (seed as usize + i + j * 3) as u8).collect())
            .collect();
        let parity = rs.encode(&data).unwrap();
        for i in 0..k {
            prop_assert_eq!(&rs.shard_at(&data, i).unwrap(), &data[i]);
        }
        for (p, expect) in parity.iter().enumerate() {
            prop_assert_eq!(&rs.shard_at(&data, k + p).unwrap(), expect);
        }
    }
}
