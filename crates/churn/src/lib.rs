//! Peer lifetime and availability modelling.
//!
//! Peer-to-peer measurement studies cited by Bernard & Le Fessant (2009)
//! — Bustamante & Qiao \[5\], Maymounkov & Mazières \[16\], Tian & Dai \[23\] —
//! established two facts this crate encodes:
//!
//! 1. **Lifetimes are heavy-tailed** (Pareto-like): most peers leave
//!    quickly, a few stay for years.
//! 2. **Fidelity**: expected *remaining* lifetime grows with the time a
//!    peer has already spent in the system, which makes *age* a usable
//!    stability estimator.
//!
//! The crate provides:
//!
//! * [`dist`] — lifetime distributions (Pareto, bounded Pareto,
//!   exponential, Weibull, log-normal, uniform, point mass) with
//!   inverse-CDF sampling, moments and quantiles, implemented from first
//!   principles (no external stats dependency).
//! * [`profile`] — the paper's §4.1.1 peer-profile table
//!   (Durable/Stable/Unstable/Erratic) and weighted profile mixes.
//! * [`session`] — the on/off availability renewal process realising a
//!   profile's long-run availability.
//! * [`estimate`] — lifetime estimators, including the paper's
//!   age-as-stability criterion and the Pareto conditional-expectation
//!   estimator that justifies it.

pub mod dist;
pub mod estimate;
pub mod profile;
pub mod session;

pub use dist::{
    BoundedPareto, Exponential, LifetimeDist, LogNormal, Pareto, PointMass, UniformRange, Weibull,
};
pub use estimate::{AgeRank, EmpiricalUptime, LifetimeEstimator, ParetoConditional};
pub use profile::{paper_profiles, LifetimeSpec, Profile, ProfileId, ProfileMix};
pub use session::SessionSampler;
