//! Peer behaviour profiles — the paper's §4.1.1 table.
//!
//! A profile fixes two properties for a peer's whole life: its **life
//! expectancy** (how many rounds it stays in the system) and its
//! **availability** (long-run fraction of time online). Profiles are
//! assigned at birth, never change, and are invisible to other peers —
//! partner selection may only use observable signals such as age.

use rand::Rng;

use crate::dist::{Exponential, LifetimeDist, Pareto, UniformRange};

/// Time-unit constants: one simulation round is one hour (paper §3.1).
pub mod time {
    /// Rounds per hour (the base unit).
    pub const HOUR: u64 = 1;
    /// Rounds per day.
    pub const DAY: u64 = 24;
    /// Rounds per week.
    pub const WEEK: u64 = 7 * DAY;
    /// Rounds per month (30 days).
    pub const MONTH: u64 = 30 * DAY;
    /// Rounds per year (365 days).
    pub const YEAR: u64 = 365 * DAY;
}

/// Index of a profile within a [`ProfileMix`].
pub type ProfileId = usize;

/// How a profile draws peer lifetimes, in rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LifetimeSpec {
    /// The peer never departs (the paper's "Durable: unlimited").
    Unlimited,
    /// Uniform over `[low, high)` rounds — how the paper states ranges
    /// such as "1.5 – 3.5 years".
    Uniform {
        /// Lower bound (inclusive), rounds.
        low: u64,
        /// Upper bound (exclusive), rounds.
        high: u64,
    },
    /// Pareto with scale `x_min` (rounds) and shape `alpha` — the
    /// measured heavy-tailed law, available for sensitivity studies.
    Pareto {
        /// Scale (minimum lifetime), rounds.
        x_min: f64,
        /// Shape parameter.
        alpha: f64,
    },
    /// Exponential with the given mean (rounds) — memoryless control.
    Exponential {
        /// Mean lifetime, rounds.
        mean: f64,
    },
    /// Deterministic lifetime, rounds.
    Fixed(u64),
}

impl LifetimeSpec {
    /// Draws a lifetime; `None` means the peer never departs.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u64> {
        match *self {
            LifetimeSpec::Unlimited => None,
            LifetimeSpec::Uniform { low, high } => {
                let d = UniformRange::new(low as f64, high as f64);
                Some(d.sample(rng).round().max(1.0) as u64)
            }
            LifetimeSpec::Pareto { x_min, alpha } => {
                let d = Pareto::new(x_min, alpha);
                Some(d.sample(rng).round().max(1.0) as u64)
            }
            LifetimeSpec::Exponential { mean } => {
                let d = Exponential::new(mean);
                Some(d.sample(rng).round().max(1.0) as u64)
            }
            LifetimeSpec::Fixed(v) => Some(v.max(1)),
        }
    }

    /// Mean lifetime in rounds; `None` for unlimited.
    pub fn mean(&self) -> Option<f64> {
        match *self {
            LifetimeSpec::Unlimited => None,
            LifetimeSpec::Uniform { low, high } => Some((low + high) as f64 / 2.0),
            LifetimeSpec::Pareto { x_min, alpha } => Pareto::new(x_min, alpha).mean(),
            LifetimeSpec::Exponential { mean } => Some(mean),
            LifetimeSpec::Fixed(v) => Some(v as f64),
        }
    }
}

/// A class of peers sharing the same behaviour (paper §3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Human-readable name ("Durable", "Erratic", …).
    pub name: &'static str,
    /// Lifetime law.
    pub lifetime: LifetimeSpec,
    /// Long-run fraction of time online, in `[0, 1]`.
    pub availability: f64,
}

impl Profile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `availability` is outside `[0, 1]`.
    pub fn new(name: &'static str, lifetime: LifetimeSpec, availability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&availability),
            "availability must be in [0, 1], got {availability}"
        );
        Profile {
            name,
            lifetime,
            availability,
        }
    }
}

/// A weighted set of profiles peers are drawn from at birth.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileMix {
    profiles: Vec<Profile>,
    /// Cumulative weights, normalised so the last entry is 1.0.
    cumulative: Vec<f64>,
}

impl ProfileMix {
    /// Builds a mix from `(profile, weight)` pairs. Weights are
    /// normalised; they need not sum to one.
    ///
    /// # Panics
    ///
    /// Panics on an empty list or non-positive total weight.
    pub fn new(entries: Vec<(Profile, f64)>) -> Self {
        assert!(!entries.is_empty(), "profile mix may not be empty");
        let total: f64 = entries.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "profile weights must sum to a positive value");
        let mut cumulative = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        let mut profiles = Vec::with_capacity(entries.len());
        for (p, w) in entries {
            assert!(w >= 0.0, "profile weight must be non-negative");
            acc += w / total;
            cumulative.push(acc);
            profiles.push(p);
        }
        // Guard against floating-point drift.
        *cumulative.last_mut().unwrap() = 1.0;
        ProfileMix {
            profiles,
            cumulative,
        }
    }

    /// Number of profiles in the mix.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if the mix holds no profiles (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profile with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn profile(&self, id: ProfileId) -> &Profile {
        &self.profiles[id]
    }

    /// All profiles, in id order.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// Normalised weight of a profile.
    pub fn weight(&self, id: ProfileId) -> f64 {
        let prev = if id == 0 {
            0.0
        } else {
            self.cumulative[id - 1]
        };
        self.cumulative[id] - prev
    }

    /// Draws a profile id according to the weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> ProfileId {
        let u: f64 = rng.gen();
        // Binary search over the cumulative weights (partition_point
        // returns the first index whose cumulative weight exceeds u).
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.profiles.len() - 1)
    }

    /// Population-mean availability, weighted by profile proportions.
    pub fn mean_availability(&self) -> f64 {
        self.profiles
            .iter()
            .enumerate()
            .map(|(i, p)| self.weight(i) * p.availability)
            .sum()
    }
}

/// The exact profile mix from §4.1.1 of the paper:
///
/// | Profile  | Proportion | Life expectancy | Availability |
/// |----------|-----------:|-----------------|-------------:|
/// | Durable  | 10%        | unlimited       | 95%          |
/// | Stable   | 25%        | 1.5 – 3.5 years | 87%          |
/// | Unstable | 30%        | 3 – 18 months   | 75%          |
/// | Erratic  | 35%        | 1 – 3 months    | 33%          |
pub fn paper_profiles() -> ProfileMix {
    use time::{MONTH, YEAR};
    ProfileMix::new(vec![
        (Profile::new("Durable", LifetimeSpec::Unlimited, 0.95), 0.10),
        (
            Profile::new(
                "Stable",
                LifetimeSpec::Uniform {
                    low: YEAR + YEAR / 2,
                    high: 3 * YEAR + YEAR / 2,
                },
                0.87,
            ),
            0.25,
        ),
        (
            Profile::new(
                "Unstable",
                LifetimeSpec::Uniform {
                    low: 3 * MONTH,
                    high: 18 * MONTH,
                },
                0.75,
            ),
            0.30,
        ),
        (
            Profile::new(
                "Erratic",
                LifetimeSpec::Uniform {
                    low: MONTH,
                    high: 3 * MONTH,
                },
                0.33,
            ),
            0.35,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_mix_matches_the_published_table() {
        let mix = paper_profiles();
        assert_eq!(mix.len(), 4);
        let names: Vec<&str> = mix.profiles().iter().map(|p| p.name).collect();
        assert_eq!(names, ["Durable", "Stable", "Unstable", "Erratic"]);

        assert!((mix.weight(0) - 0.10).abs() < 1e-12);
        assert!((mix.weight(1) - 0.25).abs() < 1e-12);
        assert!((mix.weight(2) - 0.30).abs() < 1e-12);
        assert!((mix.weight(3) - 0.35).abs() < 1e-12);

        assert_eq!(mix.profile(0).availability, 0.95);
        assert_eq!(mix.profile(1).availability, 0.87);
        assert_eq!(mix.profile(2).availability, 0.75);
        assert_eq!(mix.profile(3).availability, 0.33);

        assert_eq!(mix.profile(0).lifetime, LifetimeSpec::Unlimited);
        assert_eq!(
            mix.profile(3).lifetime,
            LifetimeSpec::Uniform {
                low: time::MONTH,
                high: 3 * time::MONTH
            }
        );
    }

    #[test]
    fn sampling_respects_proportions() {
        let mix = paper_profiles();
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[mix.sample(&mut rng)] += 1;
        }
        let expected = [0.10, 0.25, 0.30, 0.35];
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (frac - expected[i]).abs() < 0.01,
                "profile {i}: {frac} vs {}",
                expected[i]
            );
        }
    }

    #[test]
    fn lifetime_samples_respect_ranges() {
        let mix = paper_profiles();
        let mut rng = SmallRng::seed_from_u64(5);
        // Durable never dies.
        assert_eq!(mix.profile(0).lifetime.sample(&mut rng), None);
        // Erratic lives 1-3 months.
        for _ in 0..10_000 {
            let l = mix.profile(3).lifetime.sample(&mut rng).unwrap();
            assert!(
                (time::MONTH..=3 * time::MONTH).contains(&l),
                "erratic lifetime {l}"
            );
        }
    }

    #[test]
    fn lifetime_spec_means() {
        assert_eq!(LifetimeSpec::Unlimited.mean(), None);
        assert_eq!(
            LifetimeSpec::Uniform { low: 10, high: 30 }.mean(),
            Some(20.0)
        );
        assert_eq!(LifetimeSpec::Fixed(7).mean(), Some(7.0));
        assert_eq!(LifetimeSpec::Exponential { mean: 5.0 }.mean(), Some(5.0));
        let p = LifetimeSpec::Pareto {
            x_min: 10.0,
            alpha: 2.0,
        };
        assert_eq!(p.mean(), Some(20.0));
    }

    #[test]
    fn fixed_and_dist_lifetimes_are_at_least_one_round() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(LifetimeSpec::Fixed(0).sample(&mut rng), Some(1));
    }

    #[test]
    fn mean_availability_is_weighted() {
        let mix = paper_profiles();
        let expect = 0.10 * 0.95 + 0.25 * 0.87 + 0.30 * 0.75 + 0.35 * 0.33;
        assert!((mix.mean_availability() - expect).abs() < 1e-12);
    }

    #[test]
    fn custom_mix_normalises_weights() {
        let mix = ProfileMix::new(vec![
            (Profile::new("a", LifetimeSpec::Fixed(1), 0.5), 2.0),
            (Profile::new("b", LifetimeSpec::Fixed(1), 0.5), 6.0),
        ]);
        assert!((mix.weight(0) - 0.25).abs() < 1e-12);
        assert!((mix.weight(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "may not be empty")]
    fn empty_mix_panics() {
        let _ = ProfileMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "availability must be in [0, 1]")]
    fn bad_availability_panics() {
        let _ = Profile::new("x", LifetimeSpec::Unlimited, 1.2);
    }

    #[test]
    fn time_constants_are_consistent() {
        assert_eq!(time::DAY, 24 * time::HOUR);
        assert_eq!(time::WEEK, 7 * time::DAY);
        assert_eq!(time::MONTH, 30 * time::DAY);
        assert_eq!(time::YEAR, 365 * time::DAY);
    }
}
