//! Lifetime estimators: scoring peers by expected remaining lifetime.
//!
//! The paper's second contribution is the **age criterion**: "the longer a
//! node has been in the system, the more stable it will be considered"
//! (§3.2). [`AgeRank`] is exactly that rule, including the clamp at
//! `L = 90` days ("peers which have been in the system for longer times
//! are not much different"). [`ParetoConditional`] is the probabilistic
//! justification — under the measured Pareto lifetime law, expected
//! remaining lifetime is an increasing (linear) function of age, so the
//! two estimators are order-equivalent where the clamp does not bind.

use crate::dist::Pareto;

/// Observable facts about a peer that estimators may use.
///
/// Profiles are hidden (paper §4.1.1: "a peer cannot know to which
/// profile an other peer belongs"), so only the membership age and,
/// optionally, monitored uptime are available.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerObservation {
    /// Rounds since the peer first connected to the system.
    pub age_rounds: f64,
    /// Fraction of time seen online over the monitoring window, if an
    /// availability-monitoring protocol (paper §2.1, refs [14, 17]) is
    /// deployed.
    pub uptime_fraction: Option<f64>,
}

impl PeerObservation {
    /// Observation with only an age (no monitoring data).
    pub fn from_age(age_rounds: f64) -> Self {
        PeerObservation {
            age_rounds,
            uptime_fraction: None,
        }
    }
}

/// Scores peers: a higher score predicts a longer remaining lifetime.
pub trait LifetimeEstimator {
    /// Stability score for the observed peer. Only the *order* of scores
    /// matters to partner selection.
    fn score(&self, obs: &PeerObservation) -> f64;

    /// Estimator name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's criterion: score = age, clamped at `L`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgeRank {
    /// Clamp `L` in rounds; ages above it are treated as equal.
    pub clamp_rounds: f64,
}

impl AgeRank {
    /// Creates an age-rank estimator with the paper's default clamp of
    /// 90 days (2160 rounds).
    pub fn paper_default() -> Self {
        AgeRank {
            clamp_rounds: (90 * 24) as f64,
        }
    }

    /// Creates an age-rank estimator with a custom clamp.
    ///
    /// # Panics
    ///
    /// Panics unless the clamp is positive.
    pub fn with_clamp(clamp_rounds: f64) -> Self {
        assert!(clamp_rounds > 0.0, "clamp must be positive");
        AgeRank { clamp_rounds }
    }
}

impl LifetimeEstimator for AgeRank {
    fn score(&self, obs: &PeerObservation) -> f64 {
        obs.age_rounds.clamp(0.0, self.clamp_rounds)
    }

    fn name(&self) -> &'static str {
        "age-rank"
    }
}

/// Mean-residual-life under a fitted Pareto lifetime law:
/// `E[X - t | X > t] = t / (alpha - 1)` for age `t >= x_min`.
///
/// Because the score is a strictly increasing function of age, this ranks
/// identically to unclamped [`AgeRank`]; it exists to make the *magnitude*
/// of the prediction available (e.g. for proactive-repair budgeting) and
/// to document why age ranking is principled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoConditional {
    law: Pareto,
}

impl ParetoConditional {
    /// Wraps a fitted Pareto law.
    pub fn new(law: Pareto) -> Self {
        ParetoConditional { law }
    }

    /// The underlying law.
    pub fn law(&self) -> &Pareto {
        &self.law
    }
}

impl LifetimeEstimator for ParetoConditional {
    fn score(&self, obs: &PeerObservation) -> f64 {
        // For alpha <= 1 the conditional mean diverges; fall back to raw
        // age, which preserves the ordering.
        self.law
            .mean_residual_life(obs.age_rounds)
            .unwrap_or(obs.age_rounds)
    }

    fn name(&self) -> &'static str {
        "pareto-conditional"
    }
}

/// Combines monitored uptime with age: `score = uptime * min(age, clamp)`.
///
/// An extension beyond the paper (which assumes monitoring exists but
/// selects on age alone): peers that are both old *and* reliably online
/// outrank peers that are merely old. With no monitoring data the
/// estimator degrades to [`AgeRank`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalUptime {
    /// Age clamp, as in [`AgeRank`].
    pub clamp_rounds: f64,
}

impl EmpiricalUptime {
    /// Creates the estimator with the paper's 90-day clamp.
    pub fn paper_default() -> Self {
        EmpiricalUptime {
            clamp_rounds: (90 * 24) as f64,
        }
    }
}

impl LifetimeEstimator for EmpiricalUptime {
    fn score(&self, obs: &PeerObservation) -> f64 {
        let age = obs.age_rounds.clamp(0.0, self.clamp_rounds);
        match obs.uptime_fraction {
            Some(u) => u.clamp(0.0, 1.0) * age,
            None => age,
        }
    }

    fn name(&self) -> &'static str {
        "empirical-uptime"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_rank_is_monotone_then_flat() {
        let e = AgeRank::paper_default();
        let young = e.score(&PeerObservation::from_age(24.0));
        let older = e.score(&PeerObservation::from_age(240.0));
        assert!(older > young);
        // Clamp at 90 days = 2160 rounds.
        let at_clamp = e.score(&PeerObservation::from_age(2160.0));
        let beyond = e.score(&PeerObservation::from_age(100_000.0));
        assert_eq!(at_clamp, beyond);
        assert_eq!(at_clamp, 2160.0);
    }

    #[test]
    fn age_rank_handles_negative_age_defensively() {
        let e = AgeRank::paper_default();
        assert_eq!(e.score(&PeerObservation::from_age(-5.0)), 0.0);
    }

    #[test]
    fn pareto_conditional_orders_like_age() {
        let e = ParetoConditional::new(Pareto::new(24.0, 1.8));
        let mut last = -1.0;
        // Strictly increasing from x_min upward.
        for age in [24.0, 240.0, 2400.0, 24_000.0] {
            let s = e.score(&PeerObservation::from_age(age));
            assert!(s > last, "score must strictly increase, age={age}");
            last = s;
        }
        // Ages below x_min clamp to the x_min score (a tie, not a drop).
        let below = e.score(&PeerObservation::from_age(1.0));
        let at_min = e.score(&PeerObservation::from_age(24.0));
        assert_eq!(below, at_min);
    }

    #[test]
    fn pareto_conditional_falls_back_for_heavy_tails() {
        let e = ParetoConditional::new(Pareto::new(24.0, 0.9));
        assert_eq!(e.score(&PeerObservation::from_age(500.0)), 500.0);
    }

    #[test]
    fn empirical_uptime_prefers_available_peers_of_equal_age() {
        let e = EmpiricalUptime::paper_default();
        let reliable = PeerObservation {
            age_rounds: 1000.0,
            uptime_fraction: Some(0.95),
        };
        let flaky = PeerObservation {
            age_rounds: 1000.0,
            uptime_fraction: Some(0.30),
        };
        assert!(e.score(&reliable) > e.score(&flaky));
    }

    #[test]
    fn empirical_uptime_without_data_matches_age_rank() {
        let e = EmpiricalUptime::paper_default();
        let a = AgeRank::paper_default();
        for age in [0.0, 100.0, 2160.0, 9999.0] {
            let obs = PeerObservation::from_age(age);
            assert_eq!(e.score(&obs), a.score(&obs));
        }
    }

    #[test]
    fn estimator_names_are_distinct() {
        let names = [
            AgeRank::paper_default().name(),
            ParetoConditional::new(Pareto::new(1.0, 2.0)).name(),
            EmpiricalUptime::paper_default().name(),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
