//! On/off availability sessions.
//!
//! The paper specifies only each profile's **long-run** availability; a
//! simulation additionally needs session *dynamics* — how long a peer
//! stays online before disconnecting and vice versa. We realise
//! availability `a` as an alternating renewal process with geometric
//! session lengths: mean online run `a * cycle` rounds and mean offline
//! run `(1 - a) * cycle` rounds, which yields exactly `a` in the long run
//! for any `cycle`. The default cycle of 24 hours models the daily
//! connect/disconnect rhythm of home machines (DESIGN.md, deviation 1).

use rand::Rng;

/// Samples alternating online/offline session lengths for one peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSampler {
    availability: f64,
    mean_on: f64,
    mean_off: f64,
}

impl SessionSampler {
    /// Creates a sampler for the given long-run `availability` and mean
    /// on+off `cycle_rounds`.
    ///
    /// Session means are floored at one round, which perturbs the
    /// realised availability slightly for extreme inputs (e.g. `a =
    /// 0.99` with a short cycle); [`Self::realized_availability`] reports
    /// the exact long-run value.
    ///
    /// # Panics
    ///
    /// Panics unless `availability` is in `[0, 1]` and
    /// `cycle_rounds > 0`.
    pub fn new(availability: f64, cycle_rounds: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&availability),
            "availability must be in [0, 1]"
        );
        assert!(cycle_rounds > 0.0, "cycle must be positive");
        let mean_on = (availability * cycle_rounds).max(1.0);
        let mean_off = ((1.0 - availability) * cycle_rounds).max(1.0);
        SessionSampler {
            availability,
            mean_on,
            mean_off,
        }
    }

    /// The availability this sampler was built for.
    pub fn target_availability(&self) -> f64 {
        self.availability
    }

    /// Exact long-run availability of the generated process,
    /// `mean_on / (mean_on + mean_off)`.
    pub fn realized_availability(&self) -> f64 {
        if self.always_online() {
            return 1.0;
        }
        if self.always_offline() {
            return 0.0;
        }
        self.mean_on / (self.mean_on + self.mean_off)
    }

    /// True when the peer never disconnects (`availability == 1`).
    pub fn always_online(&self) -> bool {
        self.availability >= 1.0
    }

    /// True when the peer never connects (`availability == 0`).
    pub fn always_offline(&self) -> bool {
        self.availability <= 0.0
    }

    /// Draws the initial state: online with probability `availability`
    /// (the stationary distribution of the renewal process).
    pub fn initial_online<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.availability
    }

    /// Length in rounds of the next online session (>= 1).
    pub fn online_duration<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        geometric(rng, self.mean_on)
    }

    /// Length in rounds of the next offline session (>= 1).
    pub fn offline_duration<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        geometric(rng, self.mean_off)
    }
}

/// Geometric sample on `{1, 2, …}` with the given mean (>= 1): the
/// discrete memoryless session law, so a session "ends this round" with
/// constant probability `1 / mean`.
fn geometric<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    debug_assert!(mean >= 1.0);
    if mean <= 1.0 {
        return 1;
    }
    let q = 1.0 - 1.0 / mean; // continue probability
    let u: f64 = rng.gen();
    // Inverse CDF of the geometric: ceil(ln(1-u)/ln(q)) with support >= 1.
    let d = ((1.0 - u).ln() / q.ln()).ceil();
    if d.is_finite() && d >= 1.0 {
        d as u64
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn long_run_availability(sampler: &SessionSampler, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut online_rounds = 0u64;
        let mut total = 0u64;
        let mut online = sampler.initial_online(&mut rng);
        // Simulate ~200k rounds of alternating sessions.
        while total < 200_000 {
            let d = if online {
                sampler.online_duration(&mut rng)
            } else {
                sampler.offline_duration(&mut rng)
            };
            if online {
                online_rounds += d;
            }
            total += d;
            online = !online;
        }
        online_rounds as f64 / total as f64
    }

    #[test]
    fn long_run_availability_matches_target() {
        for (a, tol) in [(0.95, 0.01), (0.87, 0.01), (0.75, 0.01), (0.33, 0.01)] {
            let s = SessionSampler::new(a, 24.0);
            let got = long_run_availability(&s, 42);
            assert!(
                (got - s.realized_availability()).abs() < tol,
                "a={a}: got {got}, realized target {}",
                s.realized_availability()
            );
            // The 24h cycle keeps the rounding distortion small for the
            // paper's profiles.
            assert!(
                (s.realized_availability() - a).abs() < 0.02,
                "a={a}: realized {}",
                s.realized_availability()
            );
        }
    }

    #[test]
    fn geometric_mean_is_correct() {
        let mut rng = SmallRng::seed_from_u64(7);
        for mean in [1.5, 4.0, 16.0, 100.0] {
            let n = 100_000;
            let total: u64 = (0..n).map(|_| geometric(&mut rng, mean)).sum();
            let got = total as f64 / n as f64;
            assert!((got - mean).abs() / mean < 0.02, "mean {mean}: got {got}");
        }
    }

    #[test]
    fn durations_are_at_least_one_round() {
        let s = SessionSampler::new(0.5, 2.0);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10_000 {
            assert!(s.online_duration(&mut rng) >= 1);
            assert!(s.offline_duration(&mut rng) >= 1);
        }
    }

    #[test]
    fn extreme_availabilities() {
        let on = SessionSampler::new(1.0, 24.0);
        assert!(on.always_online());
        assert_eq!(on.realized_availability(), 1.0);
        let off = SessionSampler::new(0.0, 24.0);
        assert!(off.always_offline());
        assert_eq!(off.realized_availability(), 0.0);

        let mut rng = SmallRng::seed_from_u64(3);
        assert!((0..100).all(|_| on.initial_online(&mut rng)));
        assert!((0..100).all(|_| !off.initial_online(&mut rng)));
    }

    #[test]
    fn initial_state_is_stationary() {
        let s = SessionSampler::new(0.33, 24.0);
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let online = (0..n).filter(|_| s.initial_online(&mut rng)).count();
        let frac = online as f64 / n as f64;
        assert!((frac - 0.33).abs() < 0.01, "initial online fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "cycle must be positive")]
    fn zero_cycle_panics() {
        let _ = SessionSampler::new(0.5, 0.0);
    }
}
