//! Lifetime distributions with inverse-CDF sampling.
//!
//! All distributions measure time in **rounds** (1 round = 1 hour in the
//! paper's simulations) but are plain positive-real distributions, so
//! nothing prevents other units. `statrs` is not in the approved offline
//! dependency set, so the needed distributions are implemented here
//! directly; each is tested against closed-form moments and quantiles.

use rand::Rng;

/// A distribution over positive lifetimes.
///
/// Implementors provide the CDF and its inverse (quantile); sampling is
/// derived via inverse-transform from a uniform variate, which keeps every
/// distribution reproducible from a seeded [`rand::Rng`].
pub trait LifetimeDist {
    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile function (inverse CDF) for `p` in `[0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Mean of the distribution; `None` when it diverges (e.g. Pareto with
    /// shape `alpha <= 1`).
    fn mean(&self) -> Option<f64>;

    /// Draws one sample by inverse transform.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `gen` yields [0, 1); quantile is defined on [0, 1).
        self.quantile(rng.gen::<f64>())
    }
}

fn assert_probability(p: f64) {
    assert!((0.0..1.0).contains(&p), "p must be in [0, 1), got {p}");
}

/// Pareto (type I) distribution: `P(X > x) = (x_min / x)^alpha` for
/// `x >= x_min`.
///
/// This is the lifetime law measured for peer-to-peer systems in the
/// studies the paper builds on. Its defining property for partner
/// selection is *decreasing hazard*: conditional expected remaining
/// lifetime `E[X - t | X > t] = t / (alpha - 1)` **grows linearly with
/// age** (for `alpha > 1`), so older peers really are better bets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0, "x_min must be positive");
        assert!(alpha > 0.0, "alpha must be positive");
        Pareto { x_min, alpha }
    }

    /// Scale parameter (minimum value).
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// `E[X - t | X > t]`: expected remaining lifetime at age `t`.
    ///
    /// Returns `None` when `alpha <= 1` (infinite mean) — the estimator
    /// then falls back to ranking by raw age, which is order-equivalent.
    pub fn mean_residual_life(&self, t: f64) -> Option<f64> {
        if self.alpha <= 1.0 {
            return None;
        }
        let t = t.max(self.x_min);
        Some(t / (self.alpha - 1.0))
    }
}

impl LifetimeDist for Pareto {
    fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min {
            0.0
        } else {
            1.0 - (self.x_min / x).powf(self.alpha)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        self.x_min / (1.0 - p).powf(1.0 / self.alpha)
    }

    fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.x_min / (self.alpha - 1.0))
    }
}

/// Pareto truncated to `[x_min, x_max]` — handy for simulations that must
/// not draw multi-century lifetimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    x_min: f64,
    x_max: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < x_min < x_max` and `alpha > 0`.
    pub fn new(x_min: f64, x_max: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0, "x_min must be positive");
        assert!(x_max > x_min, "x_max must exceed x_min");
        assert!(alpha > 0.0, "alpha must be positive");
        BoundedPareto {
            x_min,
            x_max,
            alpha,
        }
    }
}

impl LifetimeDist for BoundedPareto {
    fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min {
            return 0.0;
        }
        if x >= self.x_max {
            return 1.0;
        }
        let a = self.alpha;
        let num = 1.0 - (self.x_min / x).powf(a);
        let den = 1.0 - (self.x_min / self.x_max).powf(a);
        num / den
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        let a = self.alpha;
        let l = self.x_min.powf(a);
        let h = self.x_max.powf(a);
        // Inverse of the truncated CDF.
        (-(p * h - p * l - h) / (h * l)).powf(-1.0 / a)
    }

    fn mean(&self) -> Option<f64> {
        let a = self.alpha;
        let l = self.x_min;
        let h = self.x_max;
        if (a - 1.0).abs() < 1e-12 {
            // alpha == 1 special case.
            let c = (h * l) / (h - l);
            return Some(c * (h / l).ln());
        }
        let num = l.powf(a) * a / (a - 1.0) * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0));
        let den = 1.0 - (l / h).powf(a);
        Some(num / den)
    }
}

/// Exponential distribution (memoryless — the *anti*-Pareto control: age
/// carries no information about remaining lifetime).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential with the given mean.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0`.
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Exponential { mean }
    }

    /// Rate parameter `lambda = 1 / mean`.
    pub fn rate(&self) -> f64 {
        1.0 / self.mean
    }
}

impl LifetimeDist for Exponential {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-x / self.mean).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        -self.mean * (1.0 - p).ln()
    }

    fn mean(&self) -> Option<f64> {
        Some(self.mean)
    }
}

/// Weibull distribution; `shape < 1` gives decreasing hazard (Pareto-like
/// fidelity), `shape > 1` gives wear-out behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    scale: f64,
    shape: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert!(shape > 0.0, "shape must be positive");
        Weibull { scale, shape }
    }
}

impl LifetimeDist for Weibull {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.scale * gamma(1.0 + 1.0 / self.shape))
    }
}

/// Log-normal distribution (another empirically observed session-time
/// law).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with location `mu` and scale `sigma` of the
    /// underlying normal.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        LogNormal { mu, sigma }
    }
}

impl LifetimeDist for LogNormal {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            0.5 * (1.0 + erf((x.ln() - self.mu) / (self.sigma * core::f64::consts::SQRT_2)))
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        if p == 0.0 {
            return 0.0;
        }
        (self.mu + self.sigma * core::f64::consts::SQRT_2 * inverse_erf(2.0 * p - 1.0)).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + self.sigma * self.sigma / 2.0).exp())
    }
}

/// Uniform distribution on `[low, high)` — how the paper's profile table
/// expresses life expectancy ranges ("1.5 – 3.5 years").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformRange {
    low: f64,
    high: f64,
}

impl UniformRange {
    /// Creates a uniform distribution on `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics unless `low < high` and `low >= 0`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low >= 0.0, "low must be non-negative");
        assert!(high > low, "high must exceed low");
        UniformRange { low, high }
    }
}

impl LifetimeDist for UniformRange {
    fn cdf(&self, x: f64) -> f64 {
        ((x - self.low) / (self.high - self.low)).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        self.low + p * (self.high - self.low)
    }

    fn mean(&self) -> Option<f64> {
        Some((self.low + self.high) / 2.0)
    }
}

/// Degenerate point mass — deterministic lifetimes for tests and for the
/// "Durable: unlimited" profile (realised as an effectively infinite
/// constant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointMass {
    value: f64,
}

impl PointMass {
    /// Creates a point mass at `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value < 0`.
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0, "value must be non-negative");
        PointMass { value }
    }
}

impl LifetimeDist for PointMass {
    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        self.value
    }

    fn mean(&self) -> Option<f64> {
        Some(self.value)
    }
}

// --- special functions -----------------------------------------------------

/// Lanczos approximation of the gamma function, accurate to ~1e-13 on the
/// positive reals we need (Weibull means).
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_7,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_1,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        core::f64::consts::PI / ((core::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + G + 0.5;
        (2.0 * core::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * acc
    }
}

/// Abramowitz & Stegun 7.1.26 rational approximation of `erf`, |err| < 1.5e-7.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Winitzki's approximation of the inverse error function (~2e-3 relative
/// error — more than enough for sampling).
fn inverse_erf(x: f64) -> f64 {
    assert!((-1.0..=1.0).contains(&x), "inverse_erf domain is [-1, 1]");
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs().min(1.0 - 1e-16);
    let a = 0.147;
    let ln_term = (1.0 - x * x).ln();
    let first = 2.0 / (core::f64::consts::PI * a) + ln_term / 2.0;
    sign * ((first * first - ln_term / a).sqrt() - first).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const SAMPLES: usize = 200_000;

    fn empirical_mean<D: LifetimeDist>(d: &D, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..SAMPLES).map(|_| d.sample(&mut rng)).sum::<f64>() / SAMPLES as f64
    }

    fn check_quantile_inverts_cdf<D: LifetimeDist>(d: &D) {
        for i in 0..99 {
            let p = i as f64 / 100.0 + 0.005;
            let x = d.quantile(p);
            let back = d.cdf(x);
            assert!(
                (back - p).abs() < 1e-6,
                "cdf(quantile({p})) = {back}, wanted {p}"
            );
        }
    }

    #[test]
    fn pareto_quantile_inverts_cdf() {
        check_quantile_inverts_cdf(&Pareto::new(720.0, 1.5));
    }

    #[test]
    fn pareto_mean_closed_form_and_empirical_agree() {
        let d = Pareto::new(100.0, 2.5);
        let expect = 2.5 * 100.0 / 1.5;
        assert!((d.mean().unwrap() - expect).abs() < 1e-9);
        let emp = empirical_mean(&d, 42);
        assert!(
            (emp - expect).abs() / expect < 0.03,
            "empirical {emp} vs {expect}"
        );
    }

    #[test]
    fn pareto_heavy_tail_has_no_mean() {
        assert_eq!(Pareto::new(10.0, 0.9).mean(), None);
        assert_eq!(Pareto::new(10.0, 1.0).mean(), None);
    }

    #[test]
    fn pareto_mean_residual_life_grows_with_age() {
        let d = Pareto::new(24.0, 2.0);
        let young = d.mean_residual_life(24.0).unwrap();
        let old = d.mean_residual_life(2400.0).unwrap();
        assert!(old > young * 50.0, "fidelity property violated");
        assert_eq!(d.mean_residual_life(2400.0), Some(2400.0));
        assert_eq!(Pareto::new(24.0, 1.0).mean_residual_life(100.0), None);
        // Ages below x_min clamp to x_min.
        assert_eq!(d.mean_residual_life(1.0), Some(24.0));
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_cdf() {
        let d = BoundedPareto::new(10.0, 1000.0, 1.2);
        check_quantile_inverts_cdf(&d);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=1000.0).contains(&x), "sample {x} out of bounds");
        }
        assert_eq!(d.cdf(5.0), 0.0);
        assert_eq!(d.cdf(2000.0), 1.0);
    }

    #[test]
    fn bounded_pareto_mean_matches_empirical() {
        let d = BoundedPareto::new(10.0, 1000.0, 1.5);
        let expect = d.mean().unwrap();
        let emp = empirical_mean(&d, 11);
        assert!(
            (emp - expect).abs() / expect < 0.03,
            "empirical {emp} vs closed form {expect}"
        );
        // alpha == 1 special case also matches sampling.
        let d1 = BoundedPareto::new(10.0, 1000.0, 1.0);
        let emp1 = empirical_mean(&d1, 13);
        let expect1 = d1.mean().unwrap();
        assert!(
            (emp1 - expect1).abs() / expect1 < 0.03,
            "alpha=1: empirical {emp1} vs {expect1}"
        );
    }

    #[test]
    fn exponential_mean_and_memorylessness() {
        let d = Exponential::new(500.0);
        check_quantile_inverts_cdf(&d);
        assert_eq!(d.mean(), Some(500.0));
        assert!((d.rate() - 0.002).abs() < 1e-12);
        let emp = empirical_mean(&d, 3);
        assert!((emp - 500.0).abs() / 500.0 < 0.03);
        // Memorylessness: P(X > s + t | X > s) == P(X > t).
        let s = 300.0;
        let t = 200.0;
        let cond = (1.0 - d.cdf(s + t)) / (1.0 - d.cdf(s));
        assert!((cond - (1.0 - d.cdf(t))).abs() < 1e-12);
    }

    #[test]
    fn weibull_mean_uses_gamma() {
        // shape == 1 reduces to exponential.
        let d = Weibull::new(100.0, 1.0);
        assert!((d.mean().unwrap() - 100.0).abs() < 1e-9);
        check_quantile_inverts_cdf(&d);
        // shape == 2 (Rayleigh): mean = scale * sqrt(pi)/2.
        let r = Weibull::new(100.0, 2.0);
        let expect = 100.0 * core::f64::consts::PI.sqrt() / 2.0;
        assert!((r.mean().unwrap() - expect).abs() < 1e-6);
        let emp = empirical_mean(&r, 5);
        assert!((emp - expect).abs() / expect < 0.03);
    }

    #[test]
    fn lognormal_mean_and_median() {
        let d = LogNormal::new(3.0, 0.5);
        let expect_mean = (3.0f64 + 0.125).exp();
        assert!((d.mean().unwrap() - expect_mean).abs() < 1e-9);
        // Median = exp(mu).
        let median = d.quantile(0.5);
        assert!(
            (median - 3.0f64.exp()).abs() / 3.0f64.exp() < 0.01,
            "median {median}"
        );
        let emp = empirical_mean(&d, 9);
        assert!((emp - expect_mean).abs() / expect_mean < 0.03);
    }

    #[test]
    fn lognormal_quantile_roughly_inverts_cdf() {
        // The erf approximations are only ~1e-3 accurate; allow that.
        let d = LogNormal::new(2.0, 1.0);
        for i in 1..20 {
            let p = i as f64 / 20.0;
            let back = d.cdf(d.quantile(p));
            assert!((back - p).abs() < 5e-3, "p={p} back={back}");
        }
    }

    #[test]
    fn uniform_range_basics() {
        let d = UniformRange::new(720.0, 2160.0);
        check_quantile_inverts_cdf(&d);
        assert_eq!(d.mean(), Some(1440.0));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((720.0..2160.0).contains(&x));
        }
    }

    #[test]
    fn point_mass_is_deterministic() {
        let d = PointMass::new(777.0);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 777.0);
        }
        assert_eq!(d.mean(), Some(777.0));
        assert_eq!(d.cdf(776.9), 0.0);
        assert_eq!(d.cdf(777.0), 1.0);
    }

    #[test]
    fn gamma_matches_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - core::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn erf_round_trips_through_inverse() {
        for i in -9..=9 {
            let x = i as f64 / 10.0;
            let back = erf(inverse_erf(x));
            assert!((back - x).abs() < 5e-3, "x={x} back={back}");
        }
    }

    #[test]
    #[should_panic(expected = "x_min must be positive")]
    fn pareto_rejects_bad_scale() {
        let _ = Pareto::new(0.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1)")]
    fn quantile_rejects_bad_probability() {
        let _ = Exponential::new(1.0).quantile(1.0);
    }
}
