//! Property-based tests of the churn substrate: distribution laws,
//! profile sampling and session processes.

use peerback_churn::{
    paper_profiles, BoundedPareto, Exponential, LifetimeDist, LogNormal, Pareto, PointMass,
    SessionSampler, UniformRange, Weibull,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn check_cdf_monotone<D: LifetimeDist>(d: &D, xs: &[f64]) -> Result<(), TestCaseError> {
    let mut last = -1.0f64;
    for &x in xs {
        let c = d.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c), "cdf({x}) = {c} out of range");
        prop_assert!(c >= last - 1e-12, "cdf not monotone at {x}");
        last = c;
    }
    Ok(())
}

fn grid(max: f64) -> Vec<f64> {
    (0..50).map(|i| i as f64 / 49.0 * max).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pareto_cdf_monotone_and_sampling_in_support(
        x_min in 1.0f64..1000.0,
        alpha in 0.2f64..5.0,
        seed in any::<u64>(),
    ) {
        let d = Pareto::new(x_min, alpha);
        check_cdf_monotone(&d, &grid(x_min * 20.0))?;
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            prop_assert!(s >= x_min, "sample {s} below x_min {x_min}");
        }
    }

    #[test]
    fn bounded_pareto_samples_stay_bounded(
        x_min in 1.0f64..100.0,
        span in 1.5f64..1000.0,
        alpha in 0.2f64..4.0,
        seed in any::<u64>(),
    ) {
        let x_max = x_min * span;
        let d = BoundedPareto::new(x_min, x_max, alpha);
        check_cdf_monotone(&d, &grid(x_max * 1.2))?;
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            prop_assert!((x_min..=x_max * (1.0 + 1e-9)).contains(&s));
        }
    }

    #[test]
    fn quantile_inverts_cdf_for_all_laws(
        p in 0.01f64..0.99,
        scale in 1.0f64..500.0,
        shape in 0.3f64..4.0,
    ) {
        // For every continuous law: cdf(quantile(p)) == p.
        type QuantileProbe = Box<dyn Fn(f64) -> (f64, f64)>;
        let laws: Vec<QuantileProbe> = vec![
            Box::new({ let d = Pareto::new(scale, shape); move |p| (d.quantile(p), d.cdf(d.quantile(p))) }),
            Box::new({ let d = Exponential::new(scale); move |p| (d.quantile(p), d.cdf(d.quantile(p))) }),
            Box::new({ let d = Weibull::new(scale, shape); move |p| (d.quantile(p), d.cdf(d.quantile(p))) }),
            Box::new({ let d = UniformRange::new(scale, scale * 3.0); move |p| (d.quantile(p), d.cdf(d.quantile(p))) }),
        ];
        for law in &laws {
            let (q, back) = law(p);
            prop_assert!(q.is_finite());
            prop_assert!((back - p).abs() < 1e-6, "cdf(quantile({p})) = {back}");
        }
        // Log-normal uses approximate erf; allow its documented error.
        let d = LogNormal::new(scale.ln(), shape.min(2.0));
        let back = d.cdf(d.quantile(p));
        prop_assert!((back - p).abs() < 6e-3, "lognormal cdf(q({p})) = {back}");
    }

    #[test]
    fn point_mass_is_degenerate(v in 0.0f64..1e6, seed in any::<u64>()) {
        let d = PointMass::new(v);
        let mut rng = SmallRng::seed_from_u64(seed);
        prop_assert_eq!(d.sample(&mut rng), v);
        prop_assert_eq!(d.mean(), Some(v));
    }

    #[test]
    fn profile_mix_ids_are_valid_and_lifetimes_positive(seed in any::<u64>()) {
        let mix = paper_profiles();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let id = mix.sample(&mut rng);
            prop_assert!(id < mix.len());
            if let Some(l) = mix.profile(id).lifetime.sample(&mut rng) {
                prop_assert!(l >= 1, "lifetime must be at least one round");
            }
        }
    }

    #[test]
    fn session_sampler_durations_positive_and_availability_sane(
        availability in 0.01f64..0.99,
        cycle in 2.0f64..200.0,
        seed in any::<u64>(),
    ) {
        let s = SessionSampler::new(availability, cycle);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut online = 0u64;
        let mut total = 0u64;
        let mut state = s.initial_online(&mut rng);
        while total < 50_000 {
            let d = if state {
                s.online_duration(&mut rng)
            } else {
                s.offline_duration(&mut rng)
            };
            prop_assert!(d >= 1);
            if state {
                online += d;
            }
            total += d;
            state = !state;
        }
        let measured = online as f64 / total as f64;
        let target = s.realized_availability();
        prop_assert!(
            (measured - target).abs() < 0.06,
            "measured {measured:.3} vs realized target {target:.3}"
        );
    }
}
