//! Reed–Solomon codec throughput: encoding and repair at the paper's
//! geometry (k = m = 128, 1 MB blocks scaled down) and smaller ones.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use peerback_erasure::ReedSolomon;

fn data(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..len).map(|j| ((i * 31 + j) % 251) as u8).collect())
        .collect()
}

fn encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_encode");
    for (k, m, shard) in [
        (4usize, 2usize, 64 * 1024),
        (16, 16, 16 * 1024),
        (128, 128, 4 * 1024),
    ] {
        let rs = ReedSolomon::new(k, m).unwrap();
        let blocks = data(k, shard);
        group.throughput(Throughput::Bytes((k * shard) as u64));
        group.bench_function(format!("k{k}_m{m}_{shard}B"), |b| {
            b.iter(|| rs.encode(black_box(&blocks)).unwrap())
        });
    }
    group.finish();
}

fn reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_reconstruct");
    group.sample_size(20);
    for (k, m, shard) in [(16usize, 16usize, 16 * 1024), (128, 128, 1024)] {
        let rs = ReedSolomon::new(k, m).unwrap();
        let blocks = data(k, shard);
        let parity = rs.encode(&blocks).unwrap();
        let mut all = blocks;
        all.extend(parity);
        // Adversarial survivor pattern: every second shard.
        let survivors: Vec<(usize, Vec<u8>)> = (0..k + m)
            .step_by(2)
            .take(k)
            .map(|i| (i, all[i].clone()))
            .collect();
        group.throughput(Throughput::Bytes((k * shard) as u64));
        group.bench_function(format!("data_k{k}_m{m}_{shard}B"), |b| {
            b.iter(|| rs.reconstruct_data(black_box(&survivors), shard).unwrap())
        });
        // Repairing d = 8 missing shards (decode + re-encode).
        let wanted: Vec<usize> = (1..=15).step_by(2).collect();
        group.bench_function(format!("repair8_k{k}_m{m}_{shard}B"), |b| {
            b.iter(|| {
                rs.reconstruct_shards(black_box(&survivors), shard, &wanted)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn matrix_inversion(c: &mut Criterion) {
    use peerback_erasure::Matrix;
    let mut group = c.benchmark_group("rs_matrix");
    for size in [16usize, 64, 128] {
        let m = Matrix::vandermonde(size, size);
        group.bench_function(format!("invert_{size}"), |b| {
            b.iter(|| black_box(&m).inverse().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, encode, reconstruct, matrix_inversion);
criterion_main!(benches);
