//! Churn-substrate sampling rates: lifetime draws and session lengths
//! are the highest-frequency random draws in a simulation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use peerback_churn::{
    paper_profiles, BoundedPareto, Exponential, LifetimeDist, Pareto, SessionSampler, Weibull,
};
use peerback_sim::sim_rng;

fn distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_sample_10k");
    group.throughput(Throughput::Elements(10_000));
    let pareto = Pareto::new(24.0, 1.6);
    let bounded = BoundedPareto::new(24.0, 50_000.0, 1.2);
    let exp = Exponential::new(720.0);
    let weibull = Weibull::new(720.0, 0.7);
    group.bench_function("pareto", |b| {
        let mut rng = sim_rng(1);
        b.iter(|| (0..10_000).map(|_| pareto.sample(&mut rng)).sum::<f64>())
    });
    group.bench_function("bounded_pareto", |b| {
        let mut rng = sim_rng(2);
        b.iter(|| (0..10_000).map(|_| bounded.sample(&mut rng)).sum::<f64>())
    });
    group.bench_function("exponential", |b| {
        let mut rng = sim_rng(3);
        b.iter(|| (0..10_000).map(|_| exp.sample(&mut rng)).sum::<f64>())
    });
    group.bench_function("weibull", |b| {
        let mut rng = sim_rng(4);
        b.iter(|| (0..10_000).map(|_| weibull.sample(&mut rng)).sum::<f64>())
    });
    group.finish();
}

fn profiles_and_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_10k");
    group.throughput(Throughput::Elements(10_000));
    let mix = paper_profiles();
    group.bench_function("profile_mix_sample", |b| {
        let mut rng = sim_rng(5);
        b.iter(|| (0..10_000).map(|_| mix.sample(&mut rng)).sum::<usize>())
    });
    group.bench_function("lifetime_sample", |b| {
        let mut rng = sim_rng(6);
        b.iter(|| {
            (0..10_000)
                .map(|i| {
                    mix.profile(i % 4)
                        .lifetime
                        .sample(&mut rng)
                        .unwrap_or(u64::MAX)
                })
                .sum::<u64>()
        })
    });
    let sampler = SessionSampler::new(0.33, 24.0);
    group.bench_function("session_durations", |b| {
        let mut rng = sim_rng(7);
        b.iter(|| {
            (0..10_000)
                .map(|i| {
                    if i % 2 == 0 {
                        sampler.online_duration(&mut rng)
                    } else {
                        sampler.offline_duration(&mut rng)
                    }
                })
                .sum::<u64>()
        })
    });
    group.bench_function(
        "black_box_guard", // keep the optimiser honest about the group
        |b| b.iter(|| black_box(42u64)),
    );
    group.finish();
}

criterion_group!(benches, distributions, profiles_and_sessions);
criterion_main!(benches);
