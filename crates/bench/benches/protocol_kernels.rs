//! Protocol hot-path kernels: the acceptance test and partner ranking,
//! which run hundreds of times per repair episode.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use peerback_core::{acceptance_probability, accepts, Candidate, SelectionStrategy};
use peerback_sim::sim_rng;
use rand::Rng;

fn acceptance(c: &mut Criterion) {
    let mut group = c.benchmark_group("acceptance");
    group.bench_function("probability_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for own in (0..2400u64).step_by(100) {
                for cand in (0..2400u64).step_by(100) {
                    acc += acceptance_probability(black_box(own), black_box(cand), 2160);
                }
            }
            acc
        })
    });
    group.bench_function("sampled_decisions_1k", |b| {
        let mut rng = sim_rng(7);
        b.iter(|| {
            let mut yes = 0u32;
            for _ in 0..1000 {
                let own = rng.gen_range(0..3000u64);
                let cand = rng.gen_range(0..3000u64);
                if accepts(&mut rng, own, cand, 2160) {
                    yes += 1;
                }
            }
            yes
        })
    });
    group.finish();
}

fn selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    let pool: Vec<Candidate> = (0..512u32)
        .map(|i| Candidate {
            id: i,
            age: (i as u64 * 37) % 5000,
            uptime: (i % 100) as f64 / 100.0,
            true_remaining: (i as u64 * 61) % 20_000,
        })
        .collect();
    for strategy in SelectionStrategy::ALL {
        group.bench_function(format!("{}_512_pick_256", strategy.name()), |b| {
            let mut rng = sim_rng(11);
            b.iter(|| {
                let mut p = pool.clone();
                strategy.choose(&mut rng, &mut p, 256);
                p.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, acceptance, selection);
criterion_main!(benches);
