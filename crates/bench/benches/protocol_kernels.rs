//! Protocol hot-path kernels: the acceptance test and partner ranking,
//! which run hundreds of times per repair episode.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use peerback_core::select::AgeOrderedIndex;
use peerback_core::{acceptance_probability, accepts, Candidate, SelectionStrategy};
use peerback_sim::{sim_rng, HierarchicalWheel, Round, TimingWheel};
use rand::Rng;

fn acceptance(c: &mut Criterion) {
    let mut group = c.benchmark_group("acceptance");
    group.bench_function("probability_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for own in (0..2400u64).step_by(100) {
                for cand in (0..2400u64).step_by(100) {
                    acc += acceptance_probability(black_box(own), black_box(cand), 2160);
                }
            }
            acc
        })
    });
    group.bench_function("sampled_decisions_1k", |b| {
        let mut rng = sim_rng(7);
        b.iter(|| {
            let mut yes = 0u32;
            for _ in 0..1000 {
                let own = rng.gen_range(0..3000u64);
                let cand = rng.gen_range(0..3000u64);
                if accepts(&mut rng, own, cand, 2160) {
                    yes += 1;
                }
            }
            yes
        })
    });
    group.finish();
}

fn selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    let pool: Vec<Candidate> = (0..512u32)
        .map(|i| Candidate {
            id: i,
            age: (i as u64 * 37) % 5000,
            uptime: (i % 100) as f64 / 100.0,
            estimated_remaining: (i as u64 * 53) % 15_000,
            true_remaining: (i as u64 * 61) % 20_000,
        })
        .collect();
    for strategy in SelectionStrategy::ALL {
        group.bench_function(format!("{}_512_pick_256", strategy.name()), |b| {
            let mut rng = sim_rng(11);
            b.iter(|| {
                let mut p = pool.clone();
                strategy.choose(&mut rng, &mut p, 256);
                p.len()
            })
        });
    }
    group.finish();
}

/// The AgeBased pool-build kernel, before/after the maintained
/// age-ordered index (the `acquire_partners` hot-path item): candidates
/// stream in one at a time; the legacy path collects until full and
/// shuffle-sorts at the end, the index path keeps a bounded ordered
/// pool, pre-screens candidates that cannot improve it — skipping the
/// acceptance draws they would otherwise cost — and stops after 32
/// consecutive screen misses (mirroring `world::partners`).
///
/// Two stream shapes: `converged` is the steady-state case (heavy-
/// tailed lifetimes: most online peers young, a small old tail — where
/// the screen pays); `scattered` is the adversarial uniform-age case
/// (maximum insertion churn, the index's worst case).
fn age_pool_build(c: &mut Criterion) {
    /// An age distribution shaping the candidate stream.
    type AgeShape = Box<dyn Fn(u32) -> u64>;
    let mut group = c.benchmark_group("age_pool_build");
    const CAP: usize = 256;
    let shapes: [(&str, AgeShape); 2] = [
        (
            "converged",
            Box::new(|i| {
                let h = (i as u64).wrapping_mul(2654435761) % 100;
                if h < 90 {
                    h
                } else {
                    100 + (i as u64).wrapping_mul(40503) % 4900
                }
            }),
        ),
        (
            "scattered",
            Box::new(|i| (i as u64).wrapping_mul(2654435761) % 5000),
        ),
    ];
    for (shape, age_of) in shapes {
        let stream: Vec<Candidate> = (0..1536u32)
            .map(|i| Candidate {
                id: i,
                age: age_of(i),
                uptime: (i % 100) as f64 / 100.0,
                estimated_remaining: 0,
                true_remaining: 0,
            })
            .collect();

        group.bench_function(format!("legacy_rank_{shape}_1536_to_256"), |b| {
            let mut rng = sim_rng(13);
            b.iter(|| {
                let mut pool = Vec::with_capacity(2 * CAP);
                for cand in &stream {
                    if pool.len() >= 2 * CAP {
                        break;
                    }
                    // Acceptance draws for every collected candidate.
                    if accepts(&mut rng, 2000, cand.age, 2160) {
                        pool.push(*cand);
                    }
                }
                SelectionStrategy::AgeBased.choose(&mut rng, &mut pool, CAP);
                black_box(pool.len())
            })
        });

        group.bench_function(format!("maintained_index_{shape}_1536_to_256"), |b| {
            let mut rng = sim_rng(13);
            b.iter(|| {
                let mut index = AgeOrderedIndex::new(2 * CAP);
                let mut misses = 0u32;
                for cand in &stream {
                    if !index.admits(cand.age) {
                        misses += 1;
                        if misses >= 32 {
                            break;
                        }
                        continue; // no acceptance draws spent
                    }
                    if accepts(&mut rng, 2000, cand.age, 2160) {
                        index.insert(cand.age, *cand);
                        misses = 0;
                    }
                }
                let mut pool = index.into_ranked();
                pool.truncate(CAP);
                black_box(pool.len())
            })
        });
    }
    group.finish();
}

/// The shard-wheel kernel: schedule peer lifetimes spanning multiple
/// simulated years, then advance a 4096-round window — the workload
/// where the old flat 2048-bucket wheel recirculates every far event
/// once per lap while the two-level hierarchy touches it at most twice
/// (cascade + fire). The printed touch count is the hierarchy's own
/// diagnostic ([`HierarchicalWheel::touches`]); the flat wheel's
/// equivalent is `Σ due/2048` extra touches over the same window.
fn wheel_touches(c: &mut Criterion) {
    const EVENTS: u64 = 4096;
    const SPAN: u64 = 105_000; // ~12 simulated years of lifetimes
    const WINDOW: u64 = 4096; // rounds advanced per iteration
    let dues: Vec<u64> = (0..EVENTS)
        .map(|i| i.wrapping_mul(2654435761) % SPAN + 1)
        .collect();

    // One-shot touch-count report (not a timing): how often each wheel
    // examines the far events while sweeping the window.
    let mut hier: HierarchicalWheel<u64> = HierarchicalWheel::new(512, 512);
    for &d in &dues {
        hier.schedule(Round(d), d);
    }
    for r in 0..=WINDOW {
        hier.advance(Round(r), |_| {});
    }
    let flat_touches: u64 = dues.iter().map(|d| d.min(&WINDOW) / 2048 + 1).sum();
    println!(
        "wheel_touches: {EVENTS} events over {WINDOW} rounds -> hierarchical {} touches, \
         flat-2048 {flat_touches} touches",
        hier.touches()
    );

    let mut group = c.benchmark_group("wheel_touches");
    group.bench_function("flat_2048_advance_4096", |b| {
        b.iter(|| {
            let mut w: TimingWheel<u64> = TimingWheel::new(2048);
            for &d in &dues {
                w.schedule(Round(d), d);
            }
            let mut fired = 0u32;
            for r in 0..=WINDOW {
                w.advance(Round(r), |_| fired += 1);
            }
            black_box(fired)
        })
    });
    group.bench_function("hier_512x512_advance_4096", |b| {
        b.iter(|| {
            let mut w: HierarchicalWheel<u64> = HierarchicalWheel::new(512, 512);
            for &d in &dues {
                w.schedule(Round(d), d);
            }
            let mut fired = 0u32;
            for r in 0..=WINDOW {
                w.advance(Round(r), |_| fired += 1);
            }
            black_box(fired)
        })
    });
    group.finish();
}

/// The steady-state round-overhead kernel: a small, fully joined
/// population stepped round by round. After the warm-up ramp the
/// measured loop is exactly what the zero-allocation rebuild targets —
/// recycled arenas instead of per-round `Vec::new()`s, pool epoch
/// bumps instead of thread spawns, claim runs instead of per-rank
/// messages. The printed dispatch rate is the pool's own counter;
/// build with `--features count-allocs` to see the allocation rate via
/// `perf_probe` instead (a global allocator cannot be swapped per
/// bench).
fn round_overhead(c: &mut Criterion) {
    use peerback_core::{BackupWorld, SimConfig};
    use peerback_sim::Engine;

    let mk = |shards: usize| {
        let mut cfg = SimConfig::paper(2048, u64::MAX, 7);
        cfg.k = 8;
        cfg.m = 8;
        cfg.quota = 48;
        cfg.maintenance = peerback_core::MaintenancePolicy::Reactive { threshold: 10 };
        cfg.rounds = 1 << 20; // the bench steps manually; never reached
        cfg.shards = shards;
        let mut world = BackupWorld::new(cfg);
        let mut engine = Engine::new(7);
        // Warm-up: past the join wave and first-touch buffer growth.
        engine.run(&mut world, 400);
        (world, engine)
    };

    let (mut world, mut engine) = mk(1);
    let before = world.stage_dispatches();
    let mut group = c.benchmark_group("round_overhead");
    group.bench_function("steady_round_2048_peers_1w", |b| {
        b.iter(|| {
            engine.step(&mut world);
            black_box(world.metrics().rounds)
        })
    });
    println!(
        "round_overhead: {} pool dispatches across the measured single-worker rounds \
         (inline stages wake nothing)",
        world.stage_dispatches() - before
    );

    let (mut world, mut engine) = mk(4);
    group.bench_function("steady_round_2048_peers_4w", |b| {
        b.iter(|| {
            engine.step(&mut world);
            black_box(world.metrics().rounds)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    acceptance,
    selection,
    age_pool_build,
    wheel_touches,
    round_overhead
);
criterion_main!(benches);
