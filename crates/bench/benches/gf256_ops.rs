//! Microbenchmarks of the GF(2^8) kernels under the erasure codec.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use peerback_gf256::{add_assign_slice, mul_add_slice, mul_slice, Gf256};

fn scalar_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256_scalar");
    group.bench_function("mul", |b| {
        b.iter(|| {
            let mut acc = Gf256::ONE;
            for i in 1..=255u8 {
                acc *= black_box(Gf256::new(i));
            }
            acc
        })
    });
    group.bench_function("inv", |b| {
        b.iter(|| {
            let mut acc = Gf256::ZERO;
            for i in 1..=255u8 {
                acc += black_box(Gf256::new(i)).inv();
            }
            acc
        })
    });
    group.bench_function("pow", |b| {
        b.iter(|| {
            let mut acc = Gf256::ZERO;
            for i in 1..=255u8 {
                acc += black_box(Gf256::new(i)).pow(12345);
            }
            acc
        })
    });
    group.finish();
}

fn slice_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256_slices");
    for len in [1024usize, 16 * 1024, 256 * 1024] {
        let src: Vec<u8> = (0..len).map(|i| (i % 255) as u8).collect();
        let mut dst = vec![0u8; len];
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_function(format!("mul_add/{len}"), |b| {
            b.iter(|| mul_add_slice(black_box(&mut dst), black_box(&src), 0x53))
        });
        group.bench_function(format!("mul/{len}"), |b| {
            b.iter(|| mul_slice(black_box(&mut dst), black_box(&src), 0x53))
        });
        group.bench_function(format!("add/{len}"), |b| {
            b.iter(|| add_assign_slice(black_box(&mut dst), black_box(&src)))
        });
    }
    group.finish();
}

criterion_group!(benches, scalar_ops, slice_kernels);
criterion_main!(benches);
