//! Simulation-engine throughput: rounds per second on a live network.
//!
//! This is the number that bounds how fast the paper-scale experiments
//! run (25,000 peers × 50,000 rounds).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use peerback_core::{BackupWorld, SimConfig};
use peerback_sim::Engine;

/// Builds a warmed-up world (population joined, churn running).
fn warmed_world(peers: usize, seed: u64) -> (Engine, BackupWorld) {
    let mut cfg = SimConfig::paper(peers, u64::MAX, seed);
    cfg.rounds = 10_000_000; // validation only; engine controls duration
    let mut world = BackupWorld::new(cfg);
    let mut engine = Engine::new(seed);
    engine.run(&mut world, 2_000); // warm-up: joins done, churn steady
    (engine, world)
}

fn engine_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_round");
    group.sample_size(10);
    for peers in [1_000usize, 4_000] {
        group.throughput(Throughput::Elements(100 * peers as u64));
        group.bench_function(format!("{peers}_peers_100_rounds"), |b| {
            b.iter_batched(
                || warmed_world(peers, 42),
                |(mut engine, mut world)| {
                    engine.run(&mut world, 100);
                    world
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn timing_wheel(c: &mut Criterion) {
    use peerback_sim::{Round, TimingWheel};
    let mut group = c.benchmark_group("timing_wheel");
    group.bench_function("schedule_advance_100k", |b| {
        b.iter(|| {
            let mut wheel: TimingWheel<u32> = TimingWheel::new(8192);
            for i in 0..100_000u64 {
                wheel.schedule(Round(i % 5_000), i as u32);
            }
            let mut fired = 0u64;
            for r in 0..5_000 {
                wheel.advance(Round(r), |_| fired += 1);
            }
            fired
        })
    });
    group.finish();
}

criterion_group!(benches, engine_rounds, timing_wheel);
criterion_main!(benches);
