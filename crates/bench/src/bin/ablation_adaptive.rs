//! **Ablation A4** — the paper's future-work adaptive threshold.
//!
//! §6 of the paper: "the repair threshold might be changed depending on
//! the peer context, its difficulties to find partners". This ablation
//! compares the fixed `k' = 148` against per-peer adaptive thresholds
//! (backing off on pool shortfalls), in both a comfortable market
//! (quota 384) and a deliberately starved one (quota 256 = zero slack).
//!
//! Expected: with ample quota the adaptive policy is a no-op; under
//! starvation it trades a little safety margin for markedly fewer
//! shortfall-stalled episodes.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin ablation_adaptive
//! ```

use peerback_analysis::{write_tsv, TableBuilder};
use peerback_bench::HarnessArgs;
use peerback_core::{run_sweep_with_threads, MaintenancePolicy, SimConfig};

fn main() {
    let args = HarnessArgs::parse();
    eprintln!(
        "ablation A4: fixed vs adaptive thresholds at {} peers x {} rounds ...",
        args.peers, args.rounds
    );

    let adaptive = MaintenancePolicy::Adaptive {
        base: 148,
        floor_margin: 4,
        step: 2,
    };
    let variants: Vec<(String, SimConfig)> = vec![
        ("fixed 148, quota 384".into(), args.base_config()),
        ("adaptive, quota 384".into(), {
            let mut c = args.base_config();
            c.maintenance = adaptive;
            c
        }),
        ("fixed 148, quota 256 (starved)".into(), {
            let mut c = args.base_config();
            c.quota = 256;
            c
        }),
        ("adaptive, quota 256 (starved)".into(), {
            let mut c = args.base_config();
            c.quota = 256;
            c.maintenance = adaptive;
            c
        }),
    ];

    let configs: Vec<SimConfig> = variants.iter().map(|(_, c)| c.clone()).collect();
    let results = run_sweep_with_threads(configs, args.thread_count());

    let mut table = TableBuilder::new().header([
        "variant",
        "repair episodes",
        "pool shortfalls",
        "threshold adjustments",
        "losses",
    ]);
    let mut rows = Vec::new();
    for ((name, _), metrics) in variants.iter().zip(&results) {
        let row = vec![
            name.clone(),
            metrics.total_repairs().to_string(),
            metrics.diag.pool_shortfalls.to_string(),
            metrics.diag.threshold_adjustments.to_string(),
            metrics.total_losses().to_string(),
        ];
        table.row(row.clone());
        rows.push(row);
    }
    println!("Ablation A4: fixed vs adaptive repair thresholds\n");
    println!("{}", table.render());

    let path = args.out_path("ablation_adaptive.tsv");
    write_tsv(
        &path,
        &["variant", "episodes", "shortfalls", "adjustments", "losses"],
        &rows,
    )
    .expect("write TSV");
    println!("wrote {}", path.display());
}
