//! **Figure 2** — "Average rate of data lost for the four categories of
//! peers depending of the repair threshold."
//!
//! Same sweep as Figure 1, reporting archive-loss rates per 1000 peers
//! per round.
//!
//! Expected shape (paper §4.2.1): losses concentrate at *small*
//! thresholds (the archive can slip below `k` before a repair fires) and
//! fall almost entirely on Newcomers; at the compromise threshold 148
//! losses are near zero.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin fig2_loss_by_threshold
//! ```

use peerback_analysis::{write_tsv, AsciiChart, Scale, Series, TableBuilder};
use peerback_bench::{fmt_rate, threshold_sweep, HarnessArgs};
use peerback_core::AgeCategory;

fn main() {
    let args = HarnessArgs::parse();
    eprintln!(
        "fig2: sweeping {} thresholds at {} peers x {} rounds ...",
        peerback_bench::PAPER_THRESHOLDS.len(),
        args.peers,
        args.rounds
    );
    let sweep = threshold_sweep(&args);

    let mut table = TableBuilder::new().header([
        "threshold",
        "Newcomers",
        "Young peers",
        "Old peers",
        "Elder peers",
        "total losses",
    ]);
    let mut rows = Vec::new();
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); AgeCategory::COUNT];
    for (threshold, metrics) in &sweep {
        let rates: Vec<Option<f64>> = AgeCategory::ALL
            .iter()
            .map(|&c| metrics.loss_rate_per_1000(c))
            .collect();
        let mut row: Vec<String> = std::iter::once(threshold.to_string())
            .chain(rates.iter().map(|&r| fmt_rate(r)))
            .collect();
        row.push(metrics.total_losses().to_string());
        table.row(row.clone());
        rows.push(row);
        for (i, &rate) in rates.iter().enumerate() {
            series[i].push((*threshold as f64, rate.unwrap_or(0.0)));
        }
    }

    println!("Figure 2: average archives lost per 1000 peers per round, by repair threshold\n");
    println!("{}", table.render());

    let mut chart = AsciiChart::new(
        "Archives Lost by Threshold (cf. paper Figure 2)",
        "repair threshold k'",
        "losses per 1000 peers per round",
    )
    .size(64, 16)
    .scale(Scale::Linear);
    for (i, cat) in AgeCategory::ALL.iter().enumerate() {
        chart = chart.series(Series::new(cat.name(), series[i].clone()));
    }
    println!("{}", chart.render());

    let path = args.out_path("fig2_loss_by_threshold.tsv");
    write_tsv(
        &path,
        &["threshold", "newcomers", "young", "old", "elder", "total"],
        &rows,
    )
    .expect("write TSV");
    println!("wrote {}", path.display());
}
