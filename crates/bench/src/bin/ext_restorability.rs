//! **Extension E1** — instant restorability over time.
//!
//! The paper argues durability beats availability for backup ("the users
//! are likely to prefer security … even if it takes more time", §2.2.3).
//! This experiment quantifies the flip side: at any instant, what
//! fraction of archives could start a full restore *right now* (≥ k
//! blocks on currently-online partners)? Reported for the reactive
//! threshold sweep endpoints and the proactive policy.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin ext_restorability
//! ```

use peerback_analysis::{write_tsv, AsciiChart, Scale, Series, TableBuilder};
use peerback_bench::HarnessArgs;
use peerback_core::{run_sweep_with_threads, MaintenancePolicy, SimConfig};

fn main() {
    let args = HarnessArgs::parse();
    eprintln!(
        "extension E1: restorability at {} peers x {} rounds ...",
        args.peers, args.rounds
    );

    let variants: Vec<(String, SimConfig)> = vec![
        (
            "reactive k'=132".into(),
            args.base_config().with_threshold(132),
        ),
        ("reactive k'=148".into(), args.base_config()),
        (
            "reactive k'=180".into(),
            args.base_config().with_threshold(180),
        ),
        ("proactive tick=24h".into(), {
            let mut c = args.base_config();
            c.maintenance = MaintenancePolicy::Proactive { tick_rounds: 24 };
            c
        }),
    ];
    let configs: Vec<SimConfig> = variants.iter().map(|(_, c)| c.clone()).collect();
    let results = run_sweep_with_threads(configs, args.thread_count());

    let mut table = TableBuilder::new().header([
        "policy",
        "mean instant-restorability",
        "min over run",
        "repair episodes",
    ]);
    let mut chart = AsciiChart::new(
        "Instant restorability over time",
        "days",
        "fraction of archives restorable now",
    )
    .size(64, 14)
    .scale(Scale::Linear);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for ((name, _), metrics) in variants.iter().zip(&results) {
        let series: Vec<(f64, f64)> = metrics
            .restorability
            .iter()
            .map(|&(r, f)| (r as f64 / 24.0, f))
            .collect();
        let min = series.iter().map(|&(_, f)| f).fold(1.0f64, f64::min);
        table.row([
            name.clone(),
            format!("{:.4}", metrics.mean_restorability().unwrap_or(0.0)),
            format!("{min:.4}"),
            metrics.total_repairs().to_string(),
        ]);
        for &(d, f) in &series {
            rows.push(vec![name.clone(), format!("{d:.1}"), format!("{f:.5}")]);
        }
        chart = chart.series(Series::new(name.clone(), series));
    }
    println!("Extension E1: instantaneous restorability (availability despite churn)\n");
    println!("{}", table.render());
    println!("{}", chart.render());

    let path = args.out_path("ext_restorability.tsv");
    write_tsv(&path, &["policy", "days", "fraction"], &rows).expect("write TSV");
    println!("wrote {}", path.display());
}
