//! The learned-lifetime ablation: oracle vs learned vs uniform.
//!
//! Closes the loop on the paper's core claim. Three runs of the same
//! seeded world, differing only in the partner-selection strategy:
//!
//! * **oracle** ([`SelectionStrategy::OracleLifetime`]) — ranks by true
//!   remaining lifetime, the upper bound no estimator can beat;
//! * **learned** ([`SelectionStrategy::LearnedAge`]) — ranks by the
//!   online survival model of `peerback-estimate`, fed only from death
//!   events the run itself observed;
//! * **uniform** ([`SelectionStrategy::Random`]) — no lifetime
//!   information at all, the paper's strawman baseline.
//!
//! The gated scenario is deliberately churn-rich (heavy-tailed
//! lifetimes of days-to-weeks, not the paper's years) so the model
//! observes enough deaths *within* a CI-scale run to activate; at the
//! paper's real lifetime laws a 2,000-round window is shorter than
//! almost every peer's life and all three strategies are
//! indistinguishable. The `--misreport` / `--shift-round` axes from
//! the shared harness apply to all three runs alike.
//!
//! Acceptance gates (both optional, both exit non-zero on violation):
//!
//! * `--max-loss-factor F` — learned losses must stay within `F ×`
//!   oracle losses (oracle floored at one loss so a perfect oracle
//!   does not demand perfection);
//! * `--require-beat-uniform` — learned losses must be strictly below
//!   uniform losses.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin estimate_probe -- \
//!     --peers 4096 --rounds 2000 --json --max-loss-factor 3 \
//!     --require-beat-uniform
//! ```

use std::process::ExitCode;
use std::time::Instant;

use peerback_bench::{json, HarnessArgs};
use peerback_churn::{LifetimeSpec, Profile, ProfileMix};
use peerback_core::{run_sweep_with_threads, Metrics, SelectionStrategy, SimConfig};

/// The three ablation arms, in report order.
const ARMS: [(&str, SelectionStrategy); 3] = [
    ("oracle", SelectionStrategy::OracleLifetime),
    ("learned", SelectionStrategy::LearnedAge),
    ("uniform", SelectionStrategy::Random),
];

/// The gated scenario: the paper's geometry scaled to a 16+16 code
/// with a heavy-tailed short-lifetime mix, so deaths (the model's
/// training signal) and losses (the metric under test) both occur by
/// the hundreds within a 2,000-round run. The reactive threshold sits
/// two blocks above `k`: that thin repair margin is what makes partner
/// *survival* — the quantity estimation improves — decide the loss
/// count, rather than raw repair throughput.
fn gated_config(args: &HarnessArgs, strategy: SelectionStrategy) -> SimConfig {
    let mut cfg = args.base_config().with_strategy(strategy);
    cfg.k = 16;
    cfg.m = 16;
    cfg.quota = 72;
    cfg.maintenance = peerback_core::MaintenancePolicy::Reactive { threshold: 18 };
    // All three laws are Pareto — the paper's measured reality, and the
    // regime where its core claim (age predicts remaining lifetime)
    // actually holds. A bounded law in the mix would make old peers of
    // that class the *worst* partners and punish any age-trusting
    // strategy for reasons unrelated to estimation quality.
    cfg.profiles = ProfileMix::new(vec![
        (
            Profile::new(
                "Flash",
                LifetimeSpec::Pareto {
                    x_min: 30.0,
                    alpha: 1.5,
                },
                0.33,
            ),
            0.5,
        ),
        (
            Profile::new(
                "Transient",
                LifetimeSpec::Pareto {
                    x_min: 120.0,
                    alpha: 1.9,
                },
                0.75,
            ),
            0.3,
        ),
        (
            Profile::new(
                "Seasonal",
                LifetimeSpec::Pareto {
                    x_min: 400.0,
                    alpha: 2.4,
                },
                0.9,
            ),
            0.2,
        ),
    ]);
    cfg
}

/// Flags specific to this probe, split off before the shared parse
/// (which rejects unknown flags).
struct GateArgs {
    max_loss_factor: Option<f64>,
    require_beat_uniform: bool,
    rest: Vec<String>,
}

fn split_gate_args(args: impl IntoIterator<Item = String>) -> GateArgs {
    let mut max_loss_factor = None;
    let mut require_beat_uniform = false;
    let mut rest = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--max-loss-factor" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| panic!("flag --max-loss-factor needs a value"));
                let f: f64 = v
                    .parse()
                    .unwrap_or_else(|_| panic!("--max-loss-factor expects a number, got {v:?}"));
                assert!(f >= 1.0, "--max-loss-factor must be at least 1, got {f}");
                max_loss_factor = Some(f);
            }
            "--require-beat-uniform" => require_beat_uniform = true,
            other => rest.push(other.to_string()),
        }
    }
    GateArgs {
        max_loss_factor,
        require_beat_uniform,
        rest,
    }
}

fn arm_json(name: &str, metrics: &Metrics) -> String {
    let mut obj = json::Object::new()
        .str("strategy", name)
        .num("losses", metrics.total_losses())
        .num("repairs", metrics.total_repairs())
        .num("blocks_uploaded", metrics.diag.blocks_uploaded)
        .num("blocks_downloaded", metrics.diag.blocks_downloaded)
        .num("departures", metrics.diag.departures)
        .num("partner_timeouts", metrics.diag.partner_timeouts)
        .num("pool_shortfalls", metrics.diag.pool_shortfalls)
        .float(
            "mean_restorability",
            metrics.mean_restorability().unwrap_or(f64::NAN),
        );
    if let Some(report) = &metrics.estimator {
        obj = obj.raw(
            "estimator",
            json::Object::new()
                .num("active", u64::from(report.active))
                .num("deaths_observed", report.deaths_observed)
                .num("refreshes", report.refreshes)
                .float("calibration_mae", report.calibration_mae)
                .float("legacy_mae", report.legacy_mae)
                .num("calibration_samples", report.calibration_samples)
                .nums(
                    "class_curve_active",
                    report.class_curve_active.map(u64::from),
                )
                .render(),
        );
    }
    obj.render()
}

fn main() -> ExitCode {
    let gate = split_gate_args(std::env::args().skip(1));
    let args = HarnessArgs::parse_from(gate.rest.clone());
    if !args.json {
        eprintln!(
            "estimate ablation: oracle/learned/uniform at {} peers x {} rounds (seed {}) ...",
            args.peers, args.rounds, args.seed
        );
    }
    let start = Instant::now();
    let configs: Vec<SimConfig> = ARMS.iter().map(|&(_, s)| gated_config(&args, s)).collect();
    let results = run_sweep_with_threads(configs, args.thread_count());
    let elapsed = start.elapsed();

    let losses_of = |name: &str| -> u64 {
        ARMS.iter()
            .zip(&results)
            .find(|((n, _), _)| *n == name)
            .map(|(_, m)| m.total_losses())
            .expect("arm present")
    };
    let oracle_losses = losses_of("oracle");
    let learned_losses = losses_of("learned");
    let uniform_losses = losses_of("uniform");
    // Floor the denominator: a perfect-oracle run must not force the
    // learned arm to be perfect too.
    let loss_factor = learned_losses as f64 / oracle_losses.max(1) as f64;

    if args.json {
        let mut report = json::Object::new()
            .str("probe", "estimate_probe")
            .num("peers", args.peers as u64)
            .num("rounds", args.rounds)
            .num("seed", args.seed);
        if !args.stable_json {
            report = report
                .num("shards", args.shards as u64)
                .num("host_cpus", HarnessArgs::host_cpus())
                .float("elapsed_secs", elapsed.as_secs_f64());
        }
        let report = report
            .raw(
                "strategies",
                json::array(
                    ARMS.iter()
                        .zip(&results)
                        .map(|((name, _), m)| arm_json(name, m)),
                ),
            )
            .float("loss_factor_learned_vs_oracle", loss_factor)
            .num(
                "learned_beats_uniform",
                u64::from(learned_losses < uniform_losses),
            )
            .render();
        println!("{report}");
    } else {
        println!(
            "{:<8} {:>8} {:>8} {:>10} {:>12} {:>8}",
            "strategy", "losses", "repairs", "uploads", "downloads", "restor"
        );
        for ((name, _), m) in ARMS.iter().zip(&results) {
            println!(
                "{:<8} {:>8} {:>8} {:>10} {:>12} {:>8.4}",
                name,
                m.total_losses(),
                m.total_repairs(),
                m.diag.blocks_uploaded,
                m.diag.blocks_downloaded,
                m.mean_restorability().unwrap_or(f64::NAN),
            );
        }
        if let Some(report) = ARMS
            .iter()
            .zip(&results)
            .find(|((n, _), _)| *n == "learned")
            .and_then(|(_, m)| m.estimator.as_ref())
        {
            println!(
                "learned model: active={}, {} deaths observed, {} refreshes, calibration MAE \
                 {:.1} over {} back-tests (global-curve-x-factor path: {:.1})",
                report.active,
                report.deaths_observed,
                report.refreshes,
                report.calibration_mae,
                report.calibration_samples,
                report.legacy_mae,
            );
            let active: Vec<&str> = ["reliable", "diurnal", "flaky"]
                .iter()
                .zip(report.class_curve_active)
                .filter(|&(_, on)| on)
                .map(|(name, _)| *name)
                .collect();
            println!(
                "per-class survival curves active: {}",
                if active.is_empty() {
                    "none (each class needs its own 64 windowed deaths)".to_string()
                } else {
                    active.join(", ")
                }
            );
        }
        println!(
            "loss factor learned/oracle = {loss_factor:.2}, learned beats uniform: {} \
             ({learned_losses} vs {uniform_losses})",
            learned_losses < uniform_losses
        );
    }

    let mut failed = false;
    if let Some(max) = gate.max_loss_factor {
        if loss_factor > max {
            eprintln!(
                "FAIL: learned losses ({learned_losses}) exceed {max:.1}x oracle losses \
                 ({oracle_losses}) — loss factor {loss_factor:.2}"
            );
            failed = true;
        }
    }
    if gate.require_beat_uniform && learned_losses >= uniform_losses {
        eprintln!(
            "FAIL: learned losses ({learned_losses}) do not beat uniform selection \
             ({uniform_losses})"
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_flags_are_split_from_the_shared_args() {
        let args: Vec<String> = [
            "--peers",
            "100",
            "--max-loss-factor",
            "3",
            "--require-beat-uniform",
            "--seed",
            "7",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let gate = split_gate_args(args);
        assert_eq!(gate.max_loss_factor, Some(3.0));
        assert!(gate.require_beat_uniform);
        assert_eq!(gate.rest, vec!["--peers", "100", "--seed", "7"]);
        let parsed = HarnessArgs::parse_from(gate.rest);
        assert_eq!(parsed.peers, 100);
        assert_eq!(parsed.seed, 7);
    }

    #[test]
    fn gated_scenario_is_valid_and_strategy_specific() {
        let args = HarnessArgs::parse_from(Vec::<String>::new());
        for (_, strategy) in ARMS {
            let cfg = gated_config(&args, strategy);
            assert_eq!(cfg.strategy, strategy);
            assert!(cfg.validate().is_ok());
        }
    }
}
