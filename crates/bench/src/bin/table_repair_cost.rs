//! **Table T2** — the §2.2.4 repair-cost analysis.
//!
//! Reproduces every number in the paper's feasibility argument:
//!
//! * `Δdownload > 512 s` (128 blocks at 256 kB/s),
//! * `Δupload > d x 32 s` (1 MB blocks at 32 kB/s),
//! * the 77-minute worst-case repair (`d = 128`),
//! * "no more than 20 repair operations … per day",
//! * "with 32 archives (4 GB), the repair rate should be less than one
//!   per month approximatively",
//!
//! and extends the table to the modern-DSL (4x) and FTTH links the paper
//! mentions.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin table_repair_cost
//! ```

use peerback_analysis::TableBuilder;
use peerback_net::{ArchiveGeometry, LinkModel, RepairCostModel};

fn main() {
    let geometry = ArchiveGeometry::paper_default();
    let links = [LinkModel::DSL_2009, LinkModel::DSL_MODERN, LinkModel::FTTH];

    println!("T2a: repair cost by regenerated blocks d (archive 128 MB, k = 128)\n");
    let mut t = TableBuilder::new().header([
        "link",
        "d",
        "download (s)",
        "upload (s)",
        "total",
        "minutes",
    ]);
    for link in links {
        let model = RepairCostModel::new(link, geometry);
        for d in [1usize, 16, 64, 128] {
            let c = model.repair_cost(d);
            t.row([
                link.name.to_string(),
                d.to_string(),
                format!("{:.0}", c.download_secs),
                format!("{:.0}", c.upload_secs),
                format!("{:.0} s", c.total_secs),
                format!("{:.1}", c.total_secs / 60.0),
            ]);
        }
    }
    println!("{}", t.render());

    println!("T2b: feasibility (worst-case repairs, d = m = 128)\n");
    let mut t = TableBuilder::new().header([
        "link",
        "max repairs/day (link saturated)",
        "initial backup (h)",
        "restore (min)",
    ]);
    for link in links {
        let model = RepairCostModel::new(link, geometry);
        t.row([
            link.to_string(),
            format!("{:.1}", model.max_repairs_per_day()),
            format!("{:.1}", model.initial_backup_cost().total_secs / 3600.0),
            format!("{:.1}", model.restore_cost().total_secs / 60.0),
        ]);
    }
    println!("{}", t.render());

    // The paper's 32-archive example.
    let model = RepairCostModel::new(LinkModel::DSL_2009, geometry);
    let report = model.feasibility(32, 77.0 * 60.0 / 86_400.0);
    println!(
        "paper example: 32 archives (4 GB) on 2009 DSL, one worst-case repair per day budget:"
    );
    println!(
        "  sustainable repairs/day/archive = {:.4}  (one repair per {:.1} days per archive)",
        report.repairs_per_day_per_archive,
        1.0 / report.repairs_per_day_per_archive
    );
    println!("  => the repair rate must stay below ~one per month, as the paper concludes.\n");

    // Cross-check the headline numbers programmatically.
    let worst = model.repair_cost(128);
    assert!(
        (worst.download_secs - 512.0).abs() < 1e-6,
        "Δdownload must be 512 s"
    );
    assert!(
        (worst.upload_secs - 4096.0).abs() < 1e-6,
        "Δupload must be 4096 s"
    );
    assert!(
        (76.0..78.0).contains(&(worst.total_secs / 60.0)),
        "worst case must be ~77 minutes"
    );
    assert!(model.max_repairs_per_day() < 20.0);
    println!("all §2.2.4 headline numbers verified.");
}
