//! Scaling-knee sweep: wall-clock over the `shards` (worker count) ×
//! `shard_slots` (partition granularity) × work-stealing grid, at a
//! fixed scenario, to locate the multi-core knee — the worker count
//! past which adding cores stops paying.
//!
//! Every cell simulates the identical world (`shards` is execution-only
//! and `--stable-json` runs diff byte-for-byte across the whole grid at
//! equal `shard_slots`), so the grid is a pure scheduling measurement.
//! The shard axis is derived from the host: powers of two up to
//! 2×CPUs (capped at 32), so the sweep stays cheap on a laptop and
//! covers the knee on a many-core runner.
//!
//! With `--json`, output is JSON Lines: one flat object per cell
//! (`probe: "knee_cell"`), then one `probe: "knee_sweep"` summary line
//! recording the knee — the largest worker count that still improved
//! the default-partition stealing column by ≥10% — ready for upload as
//! a CI artifact. Without `--json`, a human-readable table.
//!
//! The knee is only meaningful when `host_cpus > 1`; single-CPU hosts
//! still produce the artifact (the knee degenerates to 1 worker), which
//! is why the CI upload is gated on the runner's CPU count instead of
//! this binary refusing to run.

use std::time::Instant;

use peerback_bench::{json, HarnessArgs};
use peerback_core::BackupWorld;
use peerback_sim::Engine;

/// One measured grid cell.
struct Cell {
    shards: usize,
    shard_slots: usize,
    steal: bool,
    elapsed: f64,
}

fn main() {
    let args = HarnessArgs::parse();
    let host_cpus = HarnessArgs::host_cpus() as usize;

    let mut shard_axis = vec![1usize];
    while let Some(&last) = shard_axis.last() {
        let next = last * 2;
        if next > (2 * host_cpus).min(32) {
            break;
        }
        shard_axis.push(next);
    }
    let slots_axis = [32usize, 64, 128];

    let mut cells = Vec::new();
    for &shard_slots in &slots_axis {
        for &shards in &shard_axis {
            for steal in [true, false] {
                let cfg = args
                    .base_config()
                    .with_shards(shards)
                    .with_shard_slots(shard_slots)
                    .with_work_stealing(steal);
                let seed = cfg.seed;
                let rounds = cfg.rounds;
                let mut world = BackupWorld::new(cfg);
                let mut engine = Engine::new(seed);
                let start = Instant::now();
                engine.run(&mut world, rounds);
                let elapsed = start.elapsed().as_secs_f64();
                if !args.json {
                    println!(
                        "shards={shards:<3} slots={shard_slots:<4} steal={} {elapsed:>8.3}s \
                         ({:>10.0} peer-rounds/s)",
                        if steal { "on " } else { "off" },
                        args.peers as f64 * args.rounds as f64 / elapsed,
                    );
                }
                cells.push(Cell {
                    shards,
                    shard_slots,
                    steal,
                    elapsed,
                });
            }
        }
    }

    // The knee: walk the default-partition stealing column in worker
    // order; the knee is the last worker count that still bought a
    // ≥10% improvement over the previous one.
    let mut column: Vec<&Cell> = cells
        .iter()
        .filter(|c| c.shard_slots == 64 && c.steal)
        .collect();
    column.sort_by_key(|c| c.shards);
    let mut knee = column.first().map_or(1, |c| c.shards);
    let mut best = column.first().map_or(f64::INFINITY, |c| c.elapsed);
    for c in column.iter().skip(1) {
        if c.elapsed < best * 0.9 {
            knee = c.shards;
            best = c.elapsed;
        } else {
            break;
        }
    }

    if args.json {
        for c in &cells {
            let line = json::Object::new()
                .str("probe", "knee_cell")
                .num("peers", args.peers as u64)
                .num("rounds", args.rounds)
                .num("seed", args.seed)
                .num("shards", c.shards as u64)
                .num("shard_slots", c.shard_slots as u64)
                .num("work_stealing", u64::from(c.steal))
                .num("host_cpus", host_cpus as u64)
                .float("elapsed_secs", c.elapsed)
                .float(
                    "peer_rounds_per_sec",
                    args.peers as f64 * args.rounds as f64 / c.elapsed,
                );
            println!("{}", line.render());
        }
        let summary = json::Object::new()
            .str("probe", "knee_sweep")
            .num("peers", args.peers as u64)
            .num("rounds", args.rounds)
            .num("seed", args.seed)
            .num("host_cpus", host_cpus as u64)
            .num("cells", cells.len() as u64)
            .num("knee_shards", knee as u64)
            .float("knee_elapsed_secs", best);
        println!("{}", summary.render());
    } else {
        println!(
            "knee: {knee} worker(s) on a {host_cpus}-CPU host ({best:.3}s at shard_slots 64, \
             stealing on){}",
            if host_cpus == 1 {
                " — single-CPU host, the knee is degenerate; rerun on a multi-core machine"
            } else {
                ""
            }
        );
    }
}
