//! Internal throughput probe: how fast does one simulation run?
//!
//! Not a paper artefact — used to pick harness scale defaults and to
//! catch performance regressions by hand:
//!
//! ```text
//! cargo run --release -p peerback-bench --bin perf_probe -- --smoke
//! ```

use std::time::Instant;

use peerback_bench::HarnessArgs;
use peerback_core::run_simulation;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = args.base_config().with_paper_observers();
    println!(
        "running {} peers x {} rounds (seed {}) ...",
        args.peers, args.rounds, args.seed
    );
    let start = Instant::now();
    let metrics = run_simulation(cfg);
    let elapsed = start.elapsed();
    println!(
        "done in {:.2}s  ({:.0} peer-rounds/s)",
        elapsed.as_secs_f64(),
        (args.peers as f64 * args.rounds as f64) / elapsed.as_secs_f64()
    );
    println!(
        "repairs={:?} losses={:?} departures={} toggles={} joins={} timeouts={} shortfalls={}",
        metrics.repairs,
        metrics.losses,
        metrics.diag.departures,
        metrics.diag.session_toggles,
        metrics.diag.joins_completed,
        metrics.diag.partner_timeouts,
        metrics.diag.pool_shortfalls,
    );
    println!("peer_rounds={:?}", metrics.peer_rounds);
    for cat in peerback_core::AgeCategory::ALL {
        println!(
            "  {:<12} repair_rate/1000 = {:>10}   loss_rate/1000 = {:>10}",
            cat.name(),
            peerback_bench::fmt_rate(metrics.repair_rate_per_1000(cat)),
            peerback_bench::fmt_rate(metrics.loss_rate_per_1000(cat)),
        );
    }
    for obs in &metrics.observers {
        println!(
            "  observer {:<9} (age {:>5}h): {} repairs, {} losses",
            obs.name, obs.frozen_age, obs.total_repairs, obs.losses
        );
    }
}
