//! Internal throughput probe: how fast does one simulation run?
//!
//! Not a paper artefact — used to pick harness scale defaults and to
//! catch performance regressions by hand:
//!
//! ```text
//! cargo run --release -p peerback-bench --bin perf_probe -- --smoke
//! ```
//!
//! With `--json` the probe emits one machine-readable object on stdout
//! (timing, throughput, headline counters) so the perf trajectory can
//! be tracked across PRs; `--stable-json` drops the timing fields so
//! two same-seed runs (e.g. `--shards 1` vs `--shards 8`) must diff
//! byte-for-byte — the CI determinism gate.
//!
//! ## Steady-state overhead counters
//!
//! The probe drives the engine in two halves and reports, for the
//! **second** half only (after the join wave and other ramp effects):
//!
//! * `stage_dispatches_per_round` — worker-pool wake-ups per round
//!   (single-worker inline stages cost no wake-up and are excluded);
//! * `allocs_per_round` — heap allocations per round, present only
//!   when the binary was built with `--features count-allocs` (the
//!   counting global allocator; see `peerback_bench::alloc_probe`).
//!
//! Both are execution telemetry — they vary with `--shards` and the
//! host — so they are omitted from `--stable-json` output. The same
//! applies to `bytes_per_peer`, the approximate per-slot heap footprint
//! ([`BackupWorld::approx_bytes_per_peer`]): it depends on allocator
//! growth policy, so it rides in the telemetry block and feeds the perf
//! gate's non-blocking memory warning.

use std::time::Instant;

use peerback_bench::{alloc_probe, json, HarnessArgs};
use peerback_core::BackupWorld;
use peerback_sim::Engine;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = args.base_config().with_paper_observers();
    if !args.json {
        println!(
            "running {} peers x {} rounds (seed {}, {} shard workers, stealing {}{}) ...",
            args.peers,
            args.rounds,
            args.seed,
            args.shards,
            if args.no_steal { "off" } else { "on" },
            if args.skewed { ", skewed churn" } else { "" },
        );
    }
    let seed = cfg.seed;
    let rounds = cfg.rounds;
    let mut world = BackupWorld::new(cfg);
    let mut engine = Engine::new(seed);
    let start = Instant::now();
    // Two halves: the second is the steady-state window the overhead
    // counters cover (ramp effects — the join wave, first-touch buffer
    // growth — land in the first half). The split changes nothing about
    // the results: the engine's round counter carries across.
    let ramp_rounds = rounds / 2;
    engine.run(&mut world, ramp_rounds);
    let allocs_before = alloc_probe::allocations();
    let dispatches_before = world.stage_dispatches();
    engine.run(&mut world, rounds - ramp_rounds);
    let steady_rounds = (rounds - ramp_rounds).max(1);
    let allocs_per_round =
        (alloc_probe::allocations() - allocs_before) as f64 / steady_rounds as f64;
    let dispatches_per_round =
        (world.stage_dispatches() - dispatches_before) as f64 / steady_rounds as f64;
    let mem = world.memory_breakdown();
    let bytes_per_peer = mem.total();
    let metrics = world.into_metrics();
    let elapsed = start.elapsed();
    if args.json {
        let mut report = json::Object::new()
            .str("probe", "perf_probe")
            .num("peers", args.peers as u64)
            .num("rounds", args.rounds)
            .num("seed", args.seed);
        if !args.stable_json {
            // Timing, host facts (worker count, stealing, CPU count)
            // and execution telemetry (dispatch/alloc rates) are
            // excluded from the stable form so shard counts diff
            // byte-for-byte.
            report = report
                .num("shards", args.shards as u64)
                .num("work_stealing", u64::from(!args.no_steal))
                .num("skewed_churn", u64::from(args.skewed))
                .num("shard_slots", args.shard_slots as u64)
                .num("host_cpus", HarnessArgs::host_cpus())
                .str("gf256_backend", peerback_gf256::active_backend().name())
                .float("elapsed_secs", elapsed.as_secs_f64())
                .float(
                    "peer_rounds_per_sec",
                    (args.peers as f64 * args.rounds as f64) / elapsed.as_secs_f64(),
                )
                .float("stage_dispatches_per_round", dispatches_per_round)
                .float("bytes_per_peer", bytes_per_peer)
                // The layout behind the total, so the perf gate's
                // memory warning can name the collection that grew.
                .float("bytes_peer_table", mem.peer_table)
                .float("bytes_online_index", mem.online_index)
                .float("bytes_hosted_ledgers", mem.hosted_ledgers)
                .float("bytes_archive_states", mem.archive_states)
                .float("bytes_partner_lists", mem.partner_lists);
            if alloc_probe::ENABLED {
                report = report.float("allocs_per_round", allocs_per_round);
            }
        }
        let report = report
            .nums("repairs", metrics.repairs)
            .nums("losses", metrics.losses)
            .nums("peer_rounds", metrics.peer_rounds)
            .num("departures", metrics.diag.departures)
            .num("session_toggles", metrics.diag.session_toggles)
            .num("joins_completed", metrics.diag.joins_completed)
            .num("partner_timeouts", metrics.diag.partner_timeouts)
            .num("pool_shortfalls", metrics.diag.pool_shortfalls)
            .num("blocks_uploaded", metrics.diag.blocks_uploaded)
            .num("blocks_downloaded", metrics.diag.blocks_downloaded)
            .float(
                "mean_restorability",
                metrics.mean_restorability().unwrap_or(f64::NAN),
            );
        println!("{}", report.render());
        return;
    }
    println!(
        "done in {:.2}s  ({:.0} peer-rounds/s)",
        elapsed.as_secs_f64(),
        (args.peers as f64 * args.rounds as f64) / elapsed.as_secs_f64()
    );
    println!(
        "steady state: {dispatches_per_round:.2} pool dispatches/round{}, \
         {bytes_per_peer:.0} bytes/peer",
        if alloc_probe::ENABLED {
            format!(", {allocs_per_round:.1} allocs/round")
        } else {
            String::new()
        }
    );
    println!(
        "repairs={:?} losses={:?} departures={} toggles={} joins={} timeouts={} shortfalls={}",
        metrics.repairs,
        metrics.losses,
        metrics.diag.departures,
        metrics.diag.session_toggles,
        metrics.diag.joins_completed,
        metrics.diag.partner_timeouts,
        metrics.diag.pool_shortfalls,
    );
    println!("peer_rounds={:?}", metrics.peer_rounds);
    for cat in peerback_core::AgeCategory::ALL {
        println!(
            "  {:<12} repair_rate/1000 = {:>10}   loss_rate/1000 = {:>10}",
            cat.name(),
            peerback_bench::fmt_rate(metrics.repair_rate_per_1000(cat)),
            peerback_bench::fmt_rate(metrics.loss_rate_per_1000(cat)),
        );
    }
    for obs in &metrics.observers {
        println!(
            "  observer {:<9} (age {:>5}h): {} repairs, {} losses",
            obs.name, obs.frozen_age, obs.total_repairs, obs.losses
        );
    }
}
