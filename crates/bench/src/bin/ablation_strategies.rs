//! **Ablation A1** — partner-selection strategies at the focus
//! threshold.
//!
//! Compares the paper's age-based ranking against a random baseline (a
//! system with no lifetime estimation), an adversarial youngest-first
//! ranking, an uptime-weighted heuristic, the learned-age strategy (the
//! online survival model of `peerback-estimate`), and an oracle that
//! sees true remaining lifetimes (the upper bound on any estimator).
//! Reports per-category repair rates plus total maintenance traffic.
//!
//! Expected: age-based beats random on elder-peer maintenance cost and
//! approaches the oracle; youngest-first is the worst; learned-age
//! lands between age-based and the oracle once the model has data (see
//! `estimate_probe` for the dedicated oracle/learned/uniform ablation).
//!
//! ```text
//! cargo run --release -p peerback-bench --bin ablation_strategies
//! ```

use peerback_analysis::{write_tsv, TableBuilder};
use peerback_bench::{fmt_rate, HarnessArgs};
use peerback_core::{run_sweep_with_threads, AgeCategory, SelectionStrategy, SimConfig};

fn main() {
    let args = HarnessArgs::parse();
    eprintln!(
        "ablation A1: {} strategies at {} peers x {} rounds ...",
        SelectionStrategy::ALL.len(),
        args.peers,
        args.rounds
    );
    let configs: Vec<SimConfig> = SelectionStrategy::ALL
        .iter()
        .map(|&s| args.base_config().with_strategy(s))
        .collect();
    let results = run_sweep_with_threads(configs, args.thread_count());

    let mut table = TableBuilder::new().header([
        "strategy",
        "Newcomers",
        "Young peers",
        "Old peers",
        "Elder peers",
        "total repairs",
        "losses",
        "blocks uploaded",
    ]);
    let mut rows = Vec::new();
    for (strategy, metrics) in SelectionStrategy::ALL.iter().zip(&results) {
        let mut row = vec![strategy.name().to_string()];
        for cat in AgeCategory::ALL {
            row.push(fmt_rate(metrics.repair_rate_per_1000(cat)));
        }
        row.push(metrics.total_repairs().to_string());
        row.push(metrics.total_losses().to_string());
        row.push(metrics.diag.blocks_uploaded.to_string());
        table.row(row.clone());
        rows.push(row);
    }
    println!("Ablation A1: repair rate per 1000 peers per round, by selection strategy (k'=148)\n");
    println!("{}", table.render());

    let path = args.out_path("ablation_strategies.tsv");
    write_tsv(
        &path,
        &[
            "strategy",
            "newcomers",
            "young",
            "old",
            "elder",
            "repairs",
            "losses",
            "uploads",
        ],
        &rows,
    )
    .expect("write TSV");
    println!("wrote {}", path.display());
}
