//! Fabric end-to-end scenario: fault rates × repair policies, with the
//! restorability auditor cross-checking bytes against the simulator in
//! every cell.
//!
//! Opens the fault-injection workload family: each cell runs the full
//! combined mode (simulate placement, move real bytes through the
//! fault plane) and reports transfer outcomes, verified data losses
//! and the audit ledger. The zero-fault column doubles as a continuous
//! integration check — byte-level restorability must equal the
//! simulator's prediction exactly, so the process exits non-zero if
//! any cell reports an audit mismatch, **or** if a scrubbing sweep
//! detected at-rest corruption that was never repaired by run end.
//!
//! With `--paper-scale` the sweep is replaced by **one** combined-mode
//! run at the paper's §4.1 geometry, with the sampled auditor and
//! periodic scrubbing enabled — the configuration the SIMD gf256
//! backend exists to make affordable. Its JSON report carries the
//! byte-plane headline numbers (`gf256_backend`, `encode_mib_s`,
//! `scrub_detected`, `scrub_repaired`).
//!
//! ```text
//! cargo run --release -p peerback-bench --bin scenario_fabric -- --peers 64 --rounds 50 --json
//! cargo run --release -p peerback-bench --bin scenario_fabric -- --paper-scale --json
//! ```

use std::time::Instant;

use peerback_bench::{json, rs_bench, HarnessArgs};
use peerback_core::{MaintenancePolicy, SimConfig};
use peerback_fabric::{run_fabric, FabricConfig, FabricReport, FaultProfile};

/// In-flight fault rates swept (0 = the cross-check column).
const FAULT_RATES: [f64; 3] = [0.0, 0.02, 0.08];

/// Repair policies swept (names + constructors sized for k = 8).
const POLICIES: [(&str, MaintenancePolicy); 3] = [
    ("reactive", MaintenancePolicy::Reactive { threshold: 10 }),
    (
        "adaptive",
        MaintenancePolicy::Adaptive {
            base: 12,
            floor_margin: 1,
            step: 1,
        },
    ),
    (
        "proactive",
        MaintenancePolicy::Proactive { tick_rounds: 24 },
    ),
];

/// The scenario's simulation config: a small 8+8 geometry so byte-level
/// decodes stay cheap at any population.
fn cell_config(args: &HarnessArgs, maintenance: MaintenancePolicy) -> SimConfig {
    let mut cfg = args.base_config();
    cfg.k = 8;
    cfg.m = 8;
    cfg.quota = 48;
    cfg.maintenance = maintenance;
    cfg
}

struct Cell {
    policy: &'static str,
    fault_rate: f64,
    report: FabricReport,
}

fn run_cell(
    args: &HarnessArgs,
    policy: &'static str,
    maintenance: MaintenancePolicy,
    rate: f64,
) -> Cell {
    let fabric_cfg = FabricConfig {
        faults: FaultProfile::uniform(rate),
        // Audit every round at smoke scales, sparser on long runs.
        audit_interval: (args.rounds / 200).max(1),
        // Scrub often enough that every cell exercises the detect →
        // repair loop (and the unrepaired-corruption exit check has
        // teeth at smoke scales).
        scrub_interval: (args.rounds / 25).max(4),
        // `--link-cap` / `--flash-restore` switch every cell onto the
        // per-link transfer scheduler.
        schedule: args.schedule(),
        adversary: args.adversary,
        ..FabricConfig::default()
    };
    let report = run_fabric(cell_config(args, maintenance), fabric_cfg)
        .expect("scenario configuration is valid");
    Cell {
        policy,
        fault_rate: rate,
        report,
    }
}

fn cell_json(cell: &Cell) -> String {
    let stats = &cell.report.stats;
    let audit = &cell.report.audit;
    let failed = stats.transfers_corrupted + stats.transfers_truncated + stats.transfers_flapped;
    // Rounds-to-restore percentiles over every scheduler-tracked restore
    // (all zero when no flash wave / restores ran).
    let (p50, p95, p99) =
        peerback_fabric::restore_percentiles(&cell.report.restore_durations).unwrap_or((0, 0, 0));
    json::Object::new()
        .str("policy", cell.policy)
        .float("fault_rate", cell.fault_rate)
        .num("transfers_attempted", stats.transfers_attempted)
        .num("transfers_delivered", stats.transfers_delivered)
        .num("transfers_failed", failed)
        .num("duplicate_frames", stats.duplicate_frames)
        .num("bitrot_events", stats.bitrot_events)
        .num("bytes_shipped", stats.bytes_shipped)
        .float("upload_secs", stats.upload_secs)
        .float("download_secs", stats.download_secs)
        .num("joins", stats.joins)
        .num("episodes", stats.episodes)
        .num("repair_decodes", stats.repair_decodes)
        .num("repair_decode_fallbacks", stats.repair_decode_fallbacks)
        .num("transfers_retried", stats.transfers_retried)
        .num("retry_deliveries", stats.retry_deliveries)
        .num("retries_abandoned", stats.retries_abandoned)
        .num("scrub_checked", stats.scrub_checked)
        .num("scrub_detected", stats.scrub_detected)
        .num("scrub_repaired", stats.scrub_repaired)
        .num("scrub_obsolete", stats.scrub_obsolete)
        .num("transfers_queued", stats.transfers_queued)
        .num("transfers_carried", stats.transfers_carried)
        .num("transfers_cancelled", stats.transfers_cancelled)
        .num("flash_restores", stats.flash_restores)
        .num("flash_restore_failures", stats.flash_restore_failures)
        .num(
            "restores_completed",
            cell.report.restore_durations.len() as u64,
        )
        .num("restore_p50_rounds", p50)
        .num("restore_p95_rounds", p95)
        .num("restore_p99_rounds", p99)
        .num("audit_skipped_in_flight", audit.skipped_in_flight)
        .num("sim_losses", cell.report.metrics.total_losses())
        .num("verified_losses", cell.report.losses.len() as u64)
        .num("audit_checks", audit.checks)
        .num("audit_consistent", audit.consistent)
        .num("fault_induced_losses", audit.fault_induced_losses)
        .num("audit_mismatches", audit.mismatches)
        .num("decode_attempts", audit.decode_attempts)
        .num("decode_successes", audit.decode_successes)
        .render()
}

/// The `--paper-scale` single-run mode: combined mode at the paper's
/// §4.1 geometry with the sampled auditor and periodic scrubbing — the
/// workload the SIMD gf256 backend makes affordable on one host.
fn run_paper_scale(args: &HarnessArgs) {
    let start = Instant::now();
    let maintenance = MaintenancePolicy::Adaptive {
        base: 12,
        floor_margin: 1,
        step: 1,
    };
    let fabric_cfg = FabricConfig {
        faults: FaultProfile::uniform(0.02),
        // A full-ledger decode pass per round is what made paper scale
        // unaffordable; the sampled auditor decodes ~1/64 of joined
        // archives per pass instead, keeping round-level coverage of
        // the whole ledger with a bounded per-round bill.
        audit_interval: (args.rounds / 500).max(1),
        audit_sample_period: 64,
        // At-rest scrubbing: sweep the stores a few hundred times per
        // run; every detection must be repaired (or obsoleted by
        // churn) before the run ends, or the process exits non-zero.
        scrub_interval: (args.rounds / 250).max(4),
        schedule: args.schedule(),
        ..FabricConfig::default()
    };
    if !args.json {
        eprintln!(
            "running paper-scale combined mode: {} peers x {} rounds ...",
            args.peers, args.rounds
        );
    }
    let report = run_fabric(cell_config(args, maintenance), fabric_cfg)
        .expect("paper-scale configuration is valid");
    let elapsed = start.elapsed();
    let encode_mib_s = rs_bench::encode_mib_s();

    let stats = &report.stats;
    let audit = &report.audit;
    let unverified_losses = report
        .losses
        .iter()
        .filter(|l| l.intact_shards >= l.k)
        .count();
    let scrub_unrepaired = stats.scrub_unrepaired();
    let failed = stats.transfers_corrupted + stats.transfers_truncated + stats.transfers_flapped;
    let (p50, p95, p99) =
        peerback_fabric::restore_percentiles(&report.restore_durations).unwrap_or((0, 0, 0));

    if args.json {
        let mut out = json::Object::new()
            .str("scenario", "fabric-paper-scale")
            .num("peers", args.peers as u64)
            .num("rounds", args.rounds)
            .num("seed", args.seed);
        if !args.stable_json {
            out = out
                .num("shards", args.shards as u64)
                .num("host_cpus", HarnessArgs::host_cpus())
                .str("gf256_backend", peerback_gf256::active_backend().name())
                .float("encode_mib_s", encode_mib_s)
                .float("elapsed_secs", elapsed.as_secs_f64());
        }
        let out = out
            .num("transfers_attempted", stats.transfers_attempted)
            .num("transfers_delivered", stats.transfers_delivered)
            .num("transfers_failed", failed)
            .num("bitrot_events", stats.bitrot_events)
            .num("bytes_shipped", stats.bytes_shipped)
            .num("scrub_checked", stats.scrub_checked)
            .num("scrub_detected", stats.scrub_detected)
            .num("scrub_repaired", stats.scrub_repaired)
            .num("scrub_obsolete", stats.scrub_obsolete)
            .num("scrub_unrepaired", scrub_unrepaired)
            .num("transfers_queued", stats.transfers_queued)
            .num("transfers_carried", stats.transfers_carried)
            .num("transfers_cancelled", stats.transfers_cancelled)
            .num("flash_restores", stats.flash_restores)
            .num("flash_restore_failures", stats.flash_restore_failures)
            .num("restores_completed", report.restore_durations.len() as u64)
            .num("restore_p50_rounds", p50)
            .num("restore_p95_rounds", p95)
            .num("restore_p99_rounds", p99)
            .num("audit_skipped_in_flight", audit.skipped_in_flight)
            .num("sim_losses", report.metrics.total_losses())
            .num("verified_losses", report.losses.len() as u64)
            .num("audit_checks", audit.checks)
            .num("audit_consistent", audit.consistent)
            .num("fault_induced_losses", audit.fault_induced_losses)
            .num("audit_mismatches", audit.mismatches)
            .num("decode_attempts", audit.decode_attempts)
            .num("decode_successes", audit.decode_successes)
            .num("unverified_losses", unverified_losses as u64)
            .render();
        println!("{out}");
    } else {
        println!(
            "paper scale: {} peers x {} rounds in {:.1}s ({} backend, {encode_mib_s:.0} MiB/s \
             encode)",
            args.peers,
            args.rounds,
            elapsed.as_secs_f64(),
            peerback_gf256::active_backend().name(),
        );
        println!(
            "  transfers: {} attempted, {} delivered, {failed} failed, {} bitrot",
            stats.transfers_attempted, stats.transfers_delivered, stats.bitrot_events
        );
        println!(
            "  scrub: {} checked, {} detected, {} repaired, {} obsolete, {scrub_unrepaired} \
             unrepaired",
            stats.scrub_checked, stats.scrub_detected, stats.scrub_repaired, stats.scrub_obsolete
        );
        if !report.restore_durations.is_empty() {
            println!(
                "  restores: {} completed, rounds-to-restore p50/p95/p99 = {p50}/{p95}/{p99}",
                report.restore_durations.len()
            );
        }
        println!(
            "  audit: {} checks, {} mismatches, {unverified_losses} unverified losses",
            audit.checks, audit.mismatches
        );
    }

    if audit.mismatches > 0 || unverified_losses > 0 || scrub_unrepaired > 0 {
        eprintln!(
            "FAIL: {} audit mismatch(es), {unverified_losses} unverified loss(es), \
             {scrub_unrepaired} scrub detection(s) never repaired",
            audit.mismatches
        );
        std::process::exit(1);
    }
}

fn main() {
    let args = HarnessArgs::parse();
    if args.paper_scale {
        run_paper_scale(&args);
        return;
    }
    let start = Instant::now();
    let mut cells = Vec::new();
    for (name, maintenance) in POLICIES {
        for rate in FAULT_RATES {
            if !args.json {
                eprintln!("running {name} @ fault rate {rate} ...");
            }
            cells.push(run_cell(&args, name, maintenance, rate));
        }
    }

    let mismatches: u64 = cells.iter().map(|c| c.report.audit.mismatches).sum();
    let unverified_losses: usize = cells
        .iter()
        .flat_map(|c| &c.report.losses)
        .filter(|l| l.intact_shards >= l.k)
        .count();
    let scrub_unrepaired: u64 = cells
        .iter()
        .map(|c| c.report.stats.scrub_unrepaired())
        .sum();

    if args.json {
        let elapsed = start.elapsed();
        let mut report = json::Object::new()
            .str("scenario", "fabric")
            .num("peers", args.peers as u64)
            .num("rounds", args.rounds)
            .num("seed", args.seed);
        if !args.stable_json {
            // Timing and host facts are excluded from the stable form
            // so shard counts diff byte-for-byte (the CI combined-mode
            // determinism gate).
            report = report
                .num("shards", args.shards as u64)
                .num("work_stealing", u64::from(!args.no_steal))
                .num("host_cpus", HarnessArgs::host_cpus())
                .float("elapsed_secs", elapsed.as_secs_f64());
        }
        let report = report
            .raw("cells", json::array(cells.iter().map(cell_json)))
            .num("audit_mismatches", mismatches)
            .num("unverified_losses", unverified_losses as u64)
            .num("scrub_unrepaired", scrub_unrepaired)
            .render();
        println!("{report}");
    } else {
        println!(
            "{:<10} {:>6} {:>9} {:>9} {:>7} {:>7} {:>7} {:>9} {:>10}",
            "policy",
            "fault",
            "shipped",
            "delivered",
            "failed",
            "dups",
            "losses",
            "audits",
            "mismatches"
        );
        for cell in &cells {
            let s = &cell.report.stats;
            let failed = s.transfers_corrupted + s.transfers_truncated + s.transfers_flapped;
            println!(
                "{:<10} {:>6} {:>9} {:>9} {:>7} {:>7} {:>7} {:>9} {:>10}",
                cell.policy,
                format!("{:.0}%", cell.fault_rate * 100.0),
                s.transfers_attempted,
                s.transfers_delivered,
                failed,
                s.duplicate_frames,
                cell.report.losses.len(),
                cell.report.audit.checks,
                cell.report.audit.mismatches,
            );
        }
        println!("total audit mismatches: {mismatches}");
    }

    if mismatches > 0 || unverified_losses > 0 || scrub_unrepaired > 0 {
        eprintln!(
            "FAIL: {mismatches} audit mismatch(es), {unverified_losses} unverified loss(es), \
             {scrub_unrepaired} scrub detection(s) never repaired — the byte plane and the \
             simulator disagree"
        );
        std::process::exit(1);
    }
}
