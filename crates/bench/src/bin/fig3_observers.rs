//! **Figure 3** — "Total number of repairs done by observers."
//!
//! Runs the focus configuration (`k' = 148`) with the paper's five
//! frozen-age observers (Elder 3 months, Senior 1 month, Adult 1 week,
//! Teenager 1 day, Baby 1 hour) and plots each observer's cumulative
//! repair count over time, log scale.
//!
//! Expected shape (paper §4.2.2): cumulative repairs order strictly by
//! frozen age — the Baby repairs the most, Senior/Elder the least —
//! because a peer's *negotiation age* controls the quality of the
//! partner sets it can assemble.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin fig3_observers
//! ```

use peerback_analysis::{write_tsv, AsciiChart, Scale, Series, TableBuilder};
use peerback_bench::HarnessArgs;
use peerback_core::run_simulation;

fn main() {
    let args = HarnessArgs::parse();
    eprintln!(
        "fig3: running {} peers x {} rounds with 5 observers ...",
        args.peers, args.rounds
    );
    let cfg = args.base_config().with_paper_observers();
    let metrics = run_simulation(cfg);

    // Observer summary table (the paper's §4.2.2 observer ages + totals).
    let mut table = TableBuilder::new().header(["observer", "frozen age", "repairs", "losses"]);
    for obs in &metrics.observers {
        let age = match obs.frozen_age {
            1 => "1 hour".to_string(),
            24 => "1 day".to_string(),
            168 => "1 week".to_string(),
            720 => "1 month".to_string(),
            2160 => "3 months".to_string(),
            other => format!("{other} rounds"),
        };
        table.row([
            obs.name.to_string(),
            age,
            obs.total_repairs.to_string(),
            obs.losses.to_string(),
        ]);
    }
    println!("Figure 3: cumulative repairs by observer (k' = 148)\n");
    println!("{}", table.render());

    // Cumulative series, plotted against days like the paper.
    let mut chart = AsciiChart::new(
        "Cumulative number of repairs for Observers (log scale, cf. paper Figure 3)",
        "days",
        "cumulative repairs",
    )
    .size(64, 18)
    .scale(Scale::Log10);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for obs in &metrics.observers {
        let points: Vec<(f64, f64)> = obs
            .points
            .iter()
            .map(|&(round, repairs)| (round as f64 / 24.0, repairs as f64))
            .collect();
        chart = chart.series(Series::new(obs.name, points));
    }
    // TSV: one row per sample with all observers as columns.
    if let Some(first) = metrics.observers.first() {
        for (i, &(round, _)) in first.points.iter().enumerate() {
            let mut row = vec![format!("{:.1}", round as f64 / 24.0)];
            for obs in &metrics.observers {
                row.push(obs.points[i].1.to_string());
            }
            rows.push(row);
        }
    }
    println!("{}", chart.render());

    let header: Vec<&str> = std::iter::once("days")
        .chain(metrics.observers.iter().map(|o| o.name))
        .collect();
    let path = args.out_path("fig3_observers.tsv");
    write_tsv(&path, &header, &rows).expect("write TSV");
    println!("wrote {}", path.display());
}
