//! **Figure 1** — "Average rate of repairs for the four categories of
//! peers depending of the repair threshold."
//!
//! Sweeps the repair threshold `k'` over 132–180 (the paper's range) and
//! reports, for each age category, the average number of repairs per
//! 1000 peers per round, on a log scale.
//!
//! Expected shape (paper §4.2.1): repair rates increase with the
//! threshold — super-linearly towards 180 — and stratify by age:
//! Newcomers ≫ Young ≫ Old ≫ Elder.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin fig1_repairs_by_threshold
//! ```

use peerback_analysis::{write_tsv, AsciiChart, Scale, Series, TableBuilder};
use peerback_bench::{fmt_rate, threshold_sweep, HarnessArgs};
use peerback_core::AgeCategory;

fn main() {
    let args = HarnessArgs::parse();
    eprintln!(
        "fig1: sweeping {} thresholds at {} peers x {} rounds ...",
        peerback_bench::PAPER_THRESHOLDS.len(),
        args.peers,
        args.rounds
    );
    let sweep = threshold_sweep(&args);

    let mut table = TableBuilder::new().header([
        "threshold",
        "Newcomers",
        "Young peers",
        "Old peers",
        "Elder peers",
    ]);
    let mut rows = Vec::new();
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); AgeCategory::COUNT];
    for (threshold, metrics) in &sweep {
        let rates: Vec<Option<f64>> = AgeCategory::ALL
            .iter()
            .map(|&c| metrics.repair_rate_per_1000(c))
            .collect();
        table.row(std::iter::once(threshold.to_string()).chain(rates.iter().map(|&r| fmt_rate(r))));
        rows.push(
            std::iter::once(threshold.to_string())
                .chain(rates.iter().map(|&r| fmt_rate(r)))
                .collect::<Vec<String>>(),
        );
        for (i, &rate) in rates.iter().enumerate() {
            if let Some(rate) = rate {
                series[i].push((*threshold as f64, rate));
            }
        }
    }

    println!("Figure 1: average repairs per 1000 peers per round, by repair threshold\n");
    println!("{}", table.render());

    let mut chart = AsciiChart::new(
        "Repairs by Threshold (log scale, cf. paper Figure 1)",
        "repair threshold k'",
        "repairs per 1000 peers per round",
    )
    .size(64, 18)
    .scale(Scale::Log10);
    for (i, cat) in AgeCategory::ALL.iter().enumerate() {
        chart = chart.series(Series::new(cat.name(), series[i].clone()));
    }
    println!("{}", chart.render());

    let path = args.out_path("fig1_repairs_by_threshold.tsv");
    write_tsv(
        &path,
        &["threshold", "newcomers", "young", "old", "elder"],
        &rows,
    )
    .expect("write TSV");
    println!("wrote {}", path.display());
}
