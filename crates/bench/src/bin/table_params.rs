//! **Tables T1, T4, T5** — the paper's parameter tables: the backup
//! system parameters (§2.2.4), the age categories (§4.2.1), and the
//! observer set (§4.2.2), as realised by this implementation's defaults.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin table_params
//! ```

use peerback_analysis::TableBuilder;
use peerback_core::{AgeCategory, ObserverSpec, SimConfig};
use peerback_net::ArchiveGeometry;

fn main() {
    let cfg = SimConfig::paper_full_scale(0);
    let geometry = ArchiveGeometry::paper_default();

    println!("T1: backup system parameters (paper §2.2.4 / §4.1)\n");
    let mut t = TableBuilder::new().header(["parameter", "value"]);
    t.row(["Archive Size", "128 MB"]);
    t.row(["k (initial blocks)", &cfg.k.to_string()]);
    t.row(["m (added blocks)", &cfg.m.to_string()]);
    t.row(["n = k + m", &cfg.n_blocks().to_string()]);
    t.row([
        "block size",
        &format!("{:.0} MB", geometry.block_bytes() / (1024.0 * 1024.0)),
    ]);
    t.row([
        "storage expansion",
        &format!("{:.1}x", geometry.expansion()),
    ]);
    t.row(["quota (blocks hosted)", &cfg.quota.to_string()]);
    t.row(["repair threshold k' (focus)", "148"]);
    t.row(["threshold sweep", "132 - 180"]);
    t.row(["population", &cfg.n_peers.to_string()]);
    t.row(["rounds (1 round = 1 hour)", &cfg.rounds.to_string()]);
    t.row(["acceptance clamp L", "90 days (2160 rounds)"]);
    t.row([
        "offline write-off timeout",
        &format!("{} rounds", cfg.offline_timeout),
    ]);
    println!("{}", t.render());

    println!("T4: age categories (paper §4.2.1)\n");
    let mut t = TableBuilder::new().header(["category", "age"]);
    t.row(["Elder peers", "> 18 months"]);
    t.row(["Old peers", "6 - 18 months"]);
    t.row(["Young peers", "3 - 6 months"]);
    t.row(["Newcomers", "< 3 months"]);
    println!("{}", t.render());

    println!(
        "category boundaries in rounds: {:?}\n",
        AgeCategory::BOUNDARIES
    );

    println!("T5: observers (paper §4.2.2)\n");
    let mut t = TableBuilder::new().header(["observer", "age", "rounds"]);
    for obs in ObserverSpec::paper_set() {
        let age = match obs.frozen_age {
            1 => "1 hour",
            24 => "1 day",
            168 => "1 week",
            720 => "1 month",
            2160 => "3 months = the age limit",
            _ => "?",
        };
        t.row([obs.name, age, &obs.frozen_age.to_string()]);
    }
    println!("{}", t.render());
}
