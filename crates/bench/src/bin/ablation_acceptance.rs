//! **Ablation A2** — what the acceptance function contributes.
//!
//! Varies the §3.2 acceptance machinery at the focus threshold:
//!
//! * `mutual` — the paper's default ("both peers must agree");
//! * `one-sided` — only the owner tests the candidate;
//! * `disabled` — no acceptance test at all (pure ranking);
//! * clamp sweep — `L` of 30/90/180 days (mutual).
//!
//! The candidate-side test is the mechanism that reserves stable hosts
//! for stable owners, so removing it should flatten the Elder/Newcomer
//! stratification.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin ablation_acceptance
//! ```

use peerback_analysis::{write_tsv, TableBuilder};
use peerback_bench::{fmt_rate, HarnessArgs};
use peerback_core::{run_sweep_with_threads, AgeCategory, SimConfig};

fn main() {
    let args = HarnessArgs::parse();
    eprintln!(
        "ablation A2: 6 acceptance variants at {} peers x {} rounds ...",
        args.peers, args.rounds
    );

    let variant =
        |name: &'static str, f: &dyn Fn(SimConfig) -> SimConfig| (name, f(args.base_config()));
    let variants: Vec<(&'static str, SimConfig)> = vec![
        variant("mutual L=90d (paper)", &|c| c),
        variant("one-sided", &|mut c| {
            c.mutual_acceptance = false;
            c
        }),
        variant("disabled", &|mut c| {
            c.acceptance_enabled = false;
            c
        }),
        variant("mutual L=30d", &|mut c| {
            c.acceptance_clamp = 30 * 24;
            c
        }),
        variant("mutual L=180d", &|mut c| {
            c.acceptance_clamp = 180 * 24;
            c
        }),
        variant("no refresh (ratchet)", &|mut c| {
            c.refresh_on_repair = false;
            c
        }),
    ];

    let configs: Vec<SimConfig> = variants.iter().map(|(_, c)| c.clone()).collect();
    let results = run_sweep_with_threads(configs, args.thread_count());

    let mut table = TableBuilder::new().header([
        "variant",
        "Newcomers",
        "Young peers",
        "Old peers",
        "Elder peers",
        "stratification (new/elder)",
        "losses",
    ]);
    let mut rows = Vec::new();
    for ((name, _), metrics) in variants.iter().zip(&results) {
        let mut row = vec![name.to_string()];
        for cat in AgeCategory::ALL {
            row.push(fmt_rate(metrics.repair_rate_per_1000(cat)));
        }
        let strat = match (
            metrics.repair_rate_per_1000(AgeCategory::Newcomer),
            metrics.repair_rate_per_1000(AgeCategory::Elder),
        ) {
            (Some(n), Some(e)) if e > 0.0 => format!("{:.1}x", n / e),
            _ => "n/a".to_string(),
        };
        row.push(strat);
        row.push(metrics.total_losses().to_string());
        table.row(row.clone());
        rows.push(row);
    }
    println!("Ablation A2: repair rates per 1000 peers per round, acceptance variants (k'=148)\n");
    println!("{}", table.render());

    let path = args.out_path("ablation_acceptance.tsv");
    write_tsv(
        &path,
        &[
            "variant",
            "newcomers",
            "young",
            "old",
            "elder",
            "stratification",
            "losses",
        ],
        &rows,
    )
    .expect("write TSV");
    println!("wrote {}", path.display());
}
