//! **Ablation A3** — reactive threshold repair vs proactive top-up.
//!
//! The paper's related work (Duminuco et al. \[10\]) replaces threshold
//! monitoring with proactive block creation at the measured churn rate.
//! This ablation compares the paper's reactive `k' = 148` policy against
//! proactive top-up at several tick intervals, measuring maintenance
//! traffic (repair episodes, blocks moved) and safety (losses, minimum
//! redundancy).
//!
//! Expected: proactive maintenance trades more frequent-but-smaller
//! repairs for a higher redundancy floor; reactive batches work but
//! rides closer to the threshold.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin ablation_proactive
//! ```

use peerback_analysis::{write_tsv, TableBuilder};
use peerback_bench::HarnessArgs;
use peerback_core::{run_sweep_with_threads, MaintenancePolicy, SimConfig};

fn main() {
    let args = HarnessArgs::parse();
    eprintln!(
        "ablation A3: reactive vs proactive at {} peers x {} rounds ...",
        args.peers, args.rounds
    );

    let variants: Vec<(String, SimConfig)> = vec![
        ("reactive k'=148 (paper)".to_string(), args.base_config()),
        (
            "reactive k'=164".to_string(),
            args.base_config().with_threshold(164),
        ),
        ("proactive tick=24h".to_string(), {
            let mut c = args.base_config();
            c.maintenance = MaintenancePolicy::Proactive { tick_rounds: 24 };
            c
        }),
        ("proactive tick=72h".to_string(), {
            let mut c = args.base_config();
            c.maintenance = MaintenancePolicy::Proactive { tick_rounds: 72 };
            c
        }),
        ("proactive tick=1wk".to_string(), {
            let mut c = args.base_config();
            c.maintenance = MaintenancePolicy::Proactive { tick_rounds: 168 };
            c
        }),
    ];

    let configs: Vec<SimConfig> = variants.iter().map(|(_, c)| c.clone()).collect();
    let results = run_sweep_with_threads(configs, args.thread_count());

    let mut table = TableBuilder::new().header([
        "policy",
        "repair episodes",
        "blocks downloaded",
        "blocks uploaded",
        "losses",
    ]);
    let mut rows = Vec::new();
    for ((name, _), metrics) in variants.iter().zip(&results) {
        let row = vec![
            name.clone(),
            metrics.total_repairs().to_string(),
            metrics.diag.blocks_downloaded.to_string(),
            metrics.diag.blocks_uploaded.to_string(),
            metrics.total_losses().to_string(),
        ];
        table.row(row.clone());
        rows.push(row);
    }
    println!("Ablation A3: maintenance policy comparison\n");
    println!("{}", table.render());

    let path = args.out_path("ablation_proactive.tsv");
    write_tsv(
        &path,
        &["policy", "episodes", "downloads", "uploads", "losses"],
        &rows,
    )
    .expect("write TSV");
    println!("wrote {}", path.display());
}
