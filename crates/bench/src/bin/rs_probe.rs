//! Reed–Solomon encode-throughput probe: one sample per available
//! gf256 backend, as JSON for the `perf_gate rs` CI gate.
//!
//! Measures the paper-default geometry's streaming `encode_into`
//! throughput (MiB of source data per second) under every backend the
//! host CPU can execute, forced via [`peerback_gf256::set_backend`].
//! The report's `speedup` — best SIMD backend over scalar — is what
//! the gate compares against the ≥4× acceptance floor, and
//! `best_mib_s` is what it tracks against `ci/perf-baseline-rs.json`.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin rs_probe -- --json
//! ```

use peerback_bench::{json, rs_bench, HarnessArgs};
use peerback_gf256::Backend;

fn main() {
    let args = HarnessArgs::parse();

    let mut rows = Vec::new();
    let mut scalar_mib_s = 0.0f64;
    let mut best = (Backend::Scalar, 0.0f64);
    for backend in Backend::ALL {
        if !backend.available() {
            continue;
        }
        peerback_gf256::set_backend(backend);
        let mib_s = rs_bench::encode_mib_s();
        if backend == Backend::Scalar {
            scalar_mib_s = mib_s;
        }
        if mib_s > best.1 {
            best = (backend, mib_s);
        }
        rows.push((backend, mib_s));
        if !args.json {
            println!("{:<8} {:>10.1} MiB/s", backend.name(), mib_s);
        }
    }
    // Leave the process-wide selection back at the detected default.
    peerback_gf256::set_backend(Backend::detect());

    let speedup = if scalar_mib_s > 0.0 {
        best.1 / scalar_mib_s
    } else {
        1.0
    };
    if args.json {
        let report = json::Object::new()
            .str("probe", "rs_probe")
            .num("host_cpus", HarnessArgs::host_cpus())
            .num("shard_bytes", rs_bench::SHARD_BYTES as u64)
            .raw(
                "backends",
                json::array(rows.iter().map(|&(backend, mib_s)| {
                    json::Object::new()
                        .str("name", backend.name())
                        .float("encode_mib_s", mib_s)
                        .render()
                })),
            )
            .float("scalar_mib_s", scalar_mib_s)
            .str("best_backend", best.0.name())
            .float("best_mib_s", best.1)
            .float("speedup", speedup)
            .render();
        println!("{report}");
    } else {
        println!(
            "best: {} at {:.1} MiB/s ({speedup:.2}x over scalar)",
            best.0.name(),
            best.1
        );
    }
}
