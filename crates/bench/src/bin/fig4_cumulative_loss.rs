//! **Figure 4** — "Evolution of the cumulative number of lost archives
//! for the four categories of peers."
//!
//! Runs the focus threshold (`k' = 148`) and, because this simulator's
//! loss onset lies at lower thresholds than the paper's (see
//! EXPERIMENTS.md), also a stressed variant near the loss boundary
//! (`k' = 133`) so the curve shapes are visible. Reports cumulative
//! losses per average concurrent peer of each category over time.
//!
//! Expected shape (paper §4.2.2): losses fall almost entirely on
//! Newcomers, with a start-up bump caused by the whole initial
//! population sharing one age, then a much flatter steady-state slope.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin fig4_cumulative_loss
//! ```

use peerback_analysis::{write_tsv, AsciiChart, Scale, Series, TableBuilder};
use peerback_bench::HarnessArgs;
use peerback_core::{run_sweep_with_threads, AgeCategory, Metrics, SimConfig};

fn report(metrics: &Metrics, threshold: u16, args: &HarnessArgs) {
    println!("\nFigure 4 (k' = {threshold}): cumulative lost archives per peer, by category\n");
    let mut table =
        TableBuilder::new().header(["category", "total losses", "losses/peer (end of run)"]);
    let last = metrics.samples.last().expect("at least one sample");
    for cat in AgeCategory::ALL {
        table.row([
            cat.name().to_string(),
            metrics.losses[cat.index()].to_string(),
            format!("{:.4}", metrics.cumulative_loss_per_peer(last, cat)),
        ]);
    }
    println!("{}", table.render());

    let mut chart = AsciiChart::new(
        format!("Cumulative number of lost archives (k' = {threshold}, cf. paper Figure 4)"),
        "days",
        "cumulative losses per peer",
    )
    .size(64, 16)
    .scale(Scale::Linear);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); AgeCategory::COUNT];
    for sample in &metrics.samples {
        let days = sample.round as f64 / 24.0;
        let mut row = vec![format!("{days:.1}")];
        for cat in AgeCategory::ALL {
            let v = metrics.cumulative_loss_per_peer(sample, cat);
            series[cat.index()].push((days, v));
            row.push(format!("{v:.6}"));
        }
        rows.push(row);
    }
    for (i, cat) in AgeCategory::ALL.iter().enumerate() {
        chart = chart.series(Series::new(cat.name(), series[i].clone()));
    }
    println!("{}", chart.render());

    let path = args.out_path(&format!("fig4_cumulative_loss_k{threshold}.tsv"));
    write_tsv(
        &path,
        &["days", "newcomers", "young", "old", "elder"],
        &rows,
    )
    .expect("write TSV");
    println!("wrote {}", path.display());
}

fn main() {
    let args = HarnessArgs::parse();
    let thresholds: [u16; 2] = [148, 133];
    eprintln!(
        "fig4: running k'=148 (focus) and k'=133 (loss-stressed) at {} peers x {} rounds ...",
        args.peers, args.rounds
    );
    let configs: Vec<SimConfig> = thresholds
        .iter()
        .map(|&t| args.base_config().with_threshold(t))
        .collect();
    let results = run_sweep_with_threads(configs, args.thread_count());
    for (&threshold, metrics) in thresholds.iter().zip(&results) {
        report(metrics, threshold, &args);
    }
}
