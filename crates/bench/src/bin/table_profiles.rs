//! **Table T3** — the §4.1.1 peer-profile table, verified empirically.
//!
//! Prints the configured profile mix and then samples a population to
//! confirm that realised proportions, lifetimes and long-run
//! availabilities match the table.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin table_profiles
//! ```

use peerback_analysis::TableBuilder;
use peerback_churn::{paper_profiles, LifetimeSpec, SessionSampler};
use peerback_sim::sim_rng;

fn main() {
    let mix = paper_profiles();
    let mut rng = sim_rng(2009);

    println!("T3: peer profiles (paper §4.1.1)\n");
    let mut t =
        TableBuilder::new().header(["profile", "proportion", "life expectancy", "availability"]);
    for (i, p) in mix.profiles().iter().enumerate() {
        let life = match p.lifetime {
            LifetimeSpec::Unlimited => "unlimited".to_string(),
            LifetimeSpec::Uniform { low, high } => {
                format!(
                    "{:.1} - {:.1} months",
                    low as f64 / 720.0,
                    high as f64 / 720.0
                )
            }
            other => format!("{other:?}"),
        };
        t.row([
            p.name.to_string(),
            format!("{:.0}%", mix.weight(i) * 100.0),
            life,
            format!("{:.0}%", p.availability * 100.0),
        ]);
    }
    println!("{}", t.render());

    // Empirical verification over a sampled population.
    const N: usize = 200_000;
    let mut counts = vec![0usize; mix.len()];
    let mut lifetime_sums = vec![0.0f64; mix.len()];
    let mut lifetime_counts = vec![0usize; mix.len()];
    for _ in 0..N {
        let id = mix.sample(&mut rng);
        counts[id] += 1;
        if let Some(l) = mix.profile(id).lifetime.sample(&mut rng) {
            lifetime_sums[id] += l as f64;
            lifetime_counts[id] += 1;
        }
    }

    println!("empirical check over {N} sampled peers:\n");
    let mut t = TableBuilder::new().header([
        "profile",
        "realised proportion",
        "mean sampled lifetime (months)",
        "realised availability (simulated sessions)",
    ]);
    for (i, p) in mix.profiles().iter().enumerate() {
        let sampler = SessionSampler::new(p.availability, 24.0);
        // Simulate ~50k rounds of sessions to measure availability.
        let mut online_rounds = 0u64;
        let mut total = 0u64;
        let mut online = sampler.initial_online(&mut rng);
        while total < 50_000 {
            let d = if online {
                sampler.online_duration(&mut rng)
            } else {
                sampler.offline_duration(&mut rng)
            };
            if online {
                online_rounds += d;
            }
            total += d;
            online = !online;
        }
        let mean_life = if lifetime_counts[i] > 0 {
            format!(
                "{:.1}",
                lifetime_sums[i] / lifetime_counts[i] as f64 / 720.0
            )
        } else {
            "∞".to_string()
        };
        t.row([
            p.name.to_string(),
            format!("{:.1}%", counts[i] as f64 / N as f64 * 100.0),
            mean_life,
            format!("{:.1}%", online_rounds as f64 / total as f64 * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "population mean availability: {:.1}% (profile-weighted)",
        mix.mean_availability() * 100.0
    );
}
