//! The adversary & failure-domain acceptance gate.
//!
//! Two combined-mode runs of the same seeded world, identical down to
//! the failure-domain landscape (the same regional outage hits both),
//! differing **only** in whether any host is adversarial:
//!
//! * **clean** — every host honest: the loss baseline;
//! * **adversarial** — a fraction of hosts free-ride (ack placements,
//!   drop the bytes), challenge-response sweeps probe placements, and
//!   the reputation ledger quarantines repeat offenders.
//!
//! Sharing the outage between the arms isolates the quantity under
//! test: the marginal damage of the *attack* once detection and
//! quarantine re-enter the repair machinery, not the damage of the
//! correlated outage itself (which no reputation system can prevent).
//!
//! The probe then enforces the robustness contract (non-zero exit on
//! violation):
//!
//! * `--min-quarantine-rate F` (default 0.9) — at least `F` of the
//!   free-rider hosts that were actually shipped to must be quarantined
//!   **before half the run** is over, i.e. detection keeps pace with
//!   the attack instead of trailing it;
//! * `--max-loss-factor F` (default 2.0) — verified archive losses
//!   under attack must stay within `F ×` the clean baseline (floored at
//!   one loss), i.e. quarantine + repair degrade gracefully.
//!
//! The shared `--adversary`, `--domains`/`--outage-*`/`--partition-*`,
//! `--quarantine-threshold` and scheduler flags override the canonical
//! scenario; with none given the probe defaults to 10% free-riders,
//! eight domains with one forced outage at `rounds / 2 - rounds / 4`,
//! challenge sweeps every 8 rounds at 1/2 coverage, and a two-strike
//! quarantine threshold.
//!
//! `--stable-json` drops host facts and timings so same-seed runs at
//! different `--shards` / `--no-steal` settings must diff byte-for-byte
//! (the CI determinism gate).
//!
//! ```text
//! cargo run --release -p peerback-bench --bin adversary_probe -- \
//!     --peers 4096 --rounds 2000 --json --stable-json
//! ```

use std::process::ExitCode;
use std::time::Instant;

use peerback_bench::{json, HarnessArgs};
use peerback_core::{FailureDomainConfig, MaintenancePolicy, SimConfig};
use peerback_fabric::{run_fabric, AdversaryConfig, FabricConfig, FabricReport};

/// Flags specific to this probe, split off before the shared parse
/// (which rejects unknown flags).
struct GateArgs {
    min_quarantine_rate: f64,
    max_loss_factor: f64,
    rest: Vec<String>,
}

fn split_gate_args(args: impl IntoIterator<Item = String>) -> GateArgs {
    let mut min_quarantine_rate = 0.9;
    let mut max_loss_factor = 2.0;
    let mut rest = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            let v = iter
                .next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"));
            v.parse::<f64>()
                .unwrap_or_else(|_| panic!("{flag} expects a number, got {v:?}"))
        };
        match arg.as_str() {
            "--min-quarantine-rate" => {
                min_quarantine_rate = value("--min-quarantine-rate");
                assert!(
                    (0.0..=1.0).contains(&min_quarantine_rate),
                    "--min-quarantine-rate must be a fraction in [0, 1]"
                );
            }
            "--max-loss-factor" => {
                max_loss_factor = value("--max-loss-factor");
                assert!(
                    max_loss_factor >= 1.0,
                    "--max-loss-factor must be at least 1"
                );
            }
            other => rest.push(other.to_string()),
        }
    }
    GateArgs {
        min_quarantine_rate,
        max_loss_factor,
        rest,
    }
}

/// The shared world both arms run in: the fabric integration tests'
/// churn-rich 4+4 geometry, tight reactive threshold.
fn base_config(args: &HarnessArgs) -> SimConfig {
    let mut cfg = args.base_config();
    cfg.k = 4;
    cfg.m = 4;
    cfg.quota = 24;
    cfg.maintenance = MaintenancePolicy::Reactive { threshold: 5 };
    cfg
}

/// The attack, unless the shared flags override each axis: 10%
/// free-riders, challenges every 8 rounds at half coverage, eight
/// failure domains with one forced regional outage in the first half
/// (so detection and repair both face it before the deadline), two
/// integrity strikes to quarantine.
fn adversary_of(args: &HarnessArgs) -> AdversaryConfig {
    if args.adversary.any_hostile() || args.adversary.challenge_interval > 0 {
        args.adversary
    } else {
        AdversaryConfig {
            free_rider_fraction: 0.10,
            challenge_interval: 8,
            challenge_sample_period: 2,
            ..AdversaryConfig::default()
        }
    }
}

/// The shared landscape both arms face: failure domains + the forced
/// outage, and the quarantine threshold (inert without integrity
/// failures, so it changes nothing in the clean arm).
fn scenario_config(args: &HarnessArgs) -> SimConfig {
    let domains = if args.failure_domains.domains > 0 {
        args.failure_domains
    } else {
        FailureDomainConfig {
            domains: 8,
            outage_at: args.rounds / 4,
            outage_rounds: 50,
            ..FailureDomainConfig::default()
        }
    };
    let threshold = if args.quarantine_threshold > 0 {
        args.quarantine_threshold
    } else {
        2
    };
    base_config(args)
        .with_failure_domains(domains)
        .with_quarantine_threshold(threshold)
}

/// The fabric side of one arm; the clean arm passes the inert default
/// adversary.
fn fabric_config(args: &HarnessArgs, adversary: AdversaryConfig) -> FabricConfig {
    FabricConfig {
        audit_interval: (args.rounds / 200).max(1),
        scrub_interval: if adversary.rot_fraction > 0.0 {
            (args.rounds / 100).max(4)
        } else {
            0
        },
        schedule: args.schedule(),
        adversary,
        ..FabricConfig::default()
    }
}

/// Counts how many of the free-rider hosts that real shipments targeted
/// were quarantined strictly before `deadline`.
fn quarantined_by(report: &FabricReport, deadline: u64) -> usize {
    report
        .free_riders_targeted
        .iter()
        .filter(|id| {
            report
                .quarantined
                .iter()
                .any(|&(q, round)| q == **id && round < deadline)
        })
        .count()
}

fn main() -> ExitCode {
    let gate = split_gate_args(std::env::args().skip(1));
    let args = HarnessArgs::parse_from(gate.rest.clone());
    if !args.json {
        eprintln!(
            "adversary probe: clean vs attacked at {} peers x {} rounds (seed {}) ...",
            args.peers, args.rounds, args.seed
        );
    }
    let start = Instant::now();
    let cfg = scenario_config(&args);
    let clean = run_fabric(
        cfg.clone(),
        fabric_config(&args, AdversaryConfig::default()),
    )
    .expect("clean config is valid");
    let attacked = run_fabric(cfg, fabric_config(&args, adversary_of(&args)))
        .expect("adversarial config is valid");
    let elapsed = start.elapsed();

    let half = args.rounds / 2;
    let targeted = attacked.free_riders_targeted.len();
    let caught_by_half = quarantined_by(&attacked, half);
    let quarantine_rate = caught_by_half as f64 / targeted.max(1) as f64;
    let clean_losses = clean.losses.len() as u64;
    let attacked_losses = attacked.losses.len() as u64;
    // Floor the baseline: a loss-free clean run must not demand a
    // loss-free attacked run.
    let loss_factor = attacked_losses as f64 / clean_losses.max(1) as f64;
    let stats = &attacked.stats;

    if args.json {
        let mut report = json::Object::new()
            .str("probe", "adversary_probe")
            .num("peers", args.peers as u64)
            .num("rounds", args.rounds)
            .num("seed", args.seed);
        if !args.stable_json {
            report = report
                .num("shards", args.shards as u64)
                .num("work_stealing", u64::from(!args.no_steal))
                .num("host_cpus", HarnessArgs::host_cpus())
                .float("elapsed_secs", elapsed.as_secs_f64());
        }
        let report = report
            .num("clean_losses", clean_losses)
            .num("attacked_losses", attacked_losses)
            .float("loss_factor", loss_factor)
            .num("free_riders_targeted", targeted as u64)
            .num("quarantined_by_half", caught_by_half as u64)
            .float("quarantine_rate", quarantine_rate)
            .num("hosts_quarantined", attacked.metrics.diag.hosts_quarantined)
            .num(
                "quarantine_evictions",
                attacked.metrics.diag.quarantine_evictions,
            )
            .num("outages_started", attacked.metrics.diag.outages_started)
            .num(
                "outage_disconnects",
                attacked.metrics.diag.outage_disconnects,
            )
            .num("adversary_drops", stats.adversary_drops)
            .num("adversary_corruptions", stats.adversary_corruptions)
            .num("challenges_issued", stats.challenges_issued)
            .num("challenge_failures", stats.challenge_failures)
            .num("scrub_detected", stats.scrub_detected)
            .num("escalated_transfer_rounds", stats.escalated_transfer_rounds)
            .num("audit_mismatches", attacked.audit.mismatches)
            .render();
        println!("{report}");
    } else {
        println!(
            "clean:    {clean_losses} verified losses\nattacked: {attacked_losses} verified \
             losses (factor {loss_factor:.2}), {} drops by free riders, {} challenge failures \
             over {} challenges",
            stats.adversary_drops, stats.challenge_failures, stats.challenges_issued
        );
        println!(
            "ledger:   {caught_by_half}/{targeted} targeted free riders quarantined before \
             round {half} ({:.0}%), {} evictions, {} regional outage(s)",
            quarantine_rate * 100.0,
            attacked.metrics.diag.quarantine_evictions,
            attacked.metrics.diag.outages_started,
        );
    }

    let mut failed = false;
    if attacked.audit.mismatches > 0 || clean.audit.mismatches > 0 {
        eprintln!(
            "FAIL: {} audit mismatch(es) — the byte plane and the simulator disagree",
            attacked.audit.mismatches + clean.audit.mismatches
        );
        failed = true;
    }
    if quarantine_rate < gate.min_quarantine_rate {
        eprintln!(
            "FAIL: only {caught_by_half} of {targeted} targeted free riders quarantined before \
             round {half} ({:.0}% < {:.0}%)",
            quarantine_rate * 100.0,
            gate.min_quarantine_rate * 100.0
        );
        failed = true;
    }
    if loss_factor > gate.max_loss_factor {
        eprintln!(
            "FAIL: attacked losses ({attacked_losses}) exceed {:.1}x the clean baseline \
             ({clean_losses})",
            gate.max_loss_factor
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(extra: &[&str]) -> (GateArgs, HarnessArgs) {
        let gate = split_gate_args(extra.iter().map(|s| s.to_string()));
        let args = HarnessArgs::parse_from(gate.rest.clone());
        (gate, args)
    }

    #[test]
    fn gate_flags_are_split_from_the_shared_args() {
        let (gate, args) = parse(&[
            "--peers",
            "128",
            "--min-quarantine-rate",
            "0.8",
            "--max-loss-factor",
            "3",
        ]);
        assert_eq!(gate.min_quarantine_rate, 0.8);
        assert_eq!(gate.max_loss_factor, 3.0);
        assert_eq!(args.peers, 128);
    }

    #[test]
    fn canonical_scenario_is_valid_and_hostile() {
        let (_, args) = parse(&["--peers", "256", "--rounds", "400"]);
        let cfg = scenario_config(&args);
        assert!(cfg.validate().is_ok());
        assert!(adversary_of(&args).any_hostile());
        assert_eq!(cfg.failure_domains.domains, 8);
        assert_eq!(cfg.failure_domains.outage_at, 100);
        assert_eq!(cfg.quarantine_threshold, 2);
    }

    #[test]
    fn shared_flags_override_the_canonical_attack() {
        let (_, args) = parse(&[
            "--adversary",
            "rot=0.05,challenge=4,sample=1",
            "--domains",
            "3",
            "--quarantine-threshold",
            "5",
        ]);
        let adversary = adversary_of(&args);
        assert_eq!(adversary.rot_fraction, 0.05);
        assert_eq!(adversary.free_rider_fraction, 0.0);
        let fabric_cfg = fabric_config(&args, adversary);
        assert!(fabric_cfg.scrub_interval > 0, "rotters engage scrubbing");
        let cfg = scenario_config(&args);
        assert_eq!(cfg.failure_domains.domains, 3);
        assert_eq!(cfg.quarantine_threshold, 5);
    }
}
