//! **Ablation A5** — the §4.1 linear-scaling claim.
//!
//! "We only consider one archive per peer … However, we claim that these
//! results should scale linearly when the number of archives of a peer
//! is increasing, since they can be handled independently."
//!
//! Runs 1, 2 and 4 archives per peer (quota scaled with demand, as the
//! paper's 3× rule prescribes) and reports maintenance volume per
//! archive — if the claim holds, the per-archive column is flat.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin ablation_archives
//! ```

use peerback_analysis::{write_tsv, TableBuilder};
use peerback_bench::HarnessArgs;
use peerback_core::{run_sweep_with_threads, SimConfig};

fn main() {
    let args = HarnessArgs::parse();
    let archive_counts: [u16; 3] = [1, 2, 4];
    eprintln!(
        "ablation A5: archives/peer in {:?} at {} peers x {} rounds ...",
        archive_counts, args.peers, args.rounds
    );

    let configs: Vec<SimConfig> = archive_counts
        .iter()
        .map(|&a| {
            let mut c = args.base_config();
            c.archives_per_peer = a;
            c.quota = 384 * a as u32; // the paper's 3x-own-volume rule
            c
        })
        .collect();
    let results = run_sweep_with_threads(configs, args.thread_count());

    let mut table = TableBuilder::new().header([
        "archives/peer",
        "repair episodes",
        "episodes per archive",
        "blocks uploaded per archive",
        "losses",
    ]);
    let mut rows = Vec::new();
    let mut per_archive: Vec<f64> = Vec::new();
    for (&a, metrics) in archive_counts.iter().zip(&results) {
        let archives_total = a as u64 * args.peers as u64;
        let episodes_per = metrics.total_repairs() as f64 / archives_total as f64;
        per_archive.push(episodes_per);
        let row = vec![
            a.to_string(),
            metrics.total_repairs().to_string(),
            format!("{episodes_per:.3}"),
            format!(
                "{:.1}",
                metrics.diag.blocks_uploaded as f64 / archives_total as f64
            ),
            metrics.total_losses().to_string(),
        ];
        table.row(row.clone());
        rows.push(row);
    }
    println!("Ablation A5: does maintenance scale linearly with archives? (k'=148)\n");
    println!("{}", table.render());
    let spread = per_archive
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        / per_archive.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "per-archive episode spread across configurations: {spread:.2}x \
         (1.0x = perfectly linear scaling, the paper's claim)"
    );

    let path = args.out_path("ablation_archives.tsv");
    write_tsv(
        &path,
        &[
            "archives",
            "episodes",
            "episodes_per_archive",
            "uploads_per_archive",
            "losses",
        ],
        &rows,
    )
    .expect("write TSV");
    println!("wrote {}", path.display());
}
