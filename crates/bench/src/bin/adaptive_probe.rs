//! The adaptive-redundancy ablation: static width vs adaptive width.
//!
//! Two runs of the same seeded world, differing only in whether the
//! per-archive redundancy policy is active:
//!
//! * **static** — every archive keeps the configured `n = k + m`
//!   placements for its whole life, the paper's fixed-width baseline;
//! * **adaptive** — [`AdaptiveRedundancy`] rescoring trims archives
//!   whose hosts the learned lifetime model predicts will survive the
//!   horizon comfortably, and widens (with a preemptive repair episode)
//!   archives whose predicted durability has sagged.
//!
//! Both arms select partners with `LearnedAge`, so the learned model is
//! held constant and only the *width policy* varies. The scenario is
//! the same churn-rich gated mix as `estimate_probe`: heavy-tailed
//! Pareto lifetimes so the model trains inside a CI-scale run.
//!
//! Block counts alone undersell the result, so the report also prices
//! both arms through the §2.2.4 link-cost model
//! ([`peerback_analysis::costs`]): maintenance seconds per peer per
//! day at the paper's DSL line, the unit its feasibility argument is
//! stated in.
//!
//! Acceptance gates (both optional, both exit non-zero on violation):
//!
//! * `--max-upload-ratio F` — adaptive uploads must stay within `F ×`
//!   static uploads (the issue's headline gate uses `0.9`);
//! * `--require-no-extra-loss` — adaptive losses must not exceed
//!   static losses.
//!
//! ```text
//! cargo run --release -p peerback-bench --bin adaptive_probe -- \
//!     --peers 4096 --rounds 2000 --json --max-upload-ratio 0.9 \
//!     --require-no-extra-loss
//! ```

use std::process::ExitCode;
use std::time::Instant;

use peerback_analysis::ObservedTraffic;
use peerback_bench::{json, HarnessArgs};
use peerback_churn::{LifetimeSpec, Profile, ProfileMix};
use peerback_core::{
    run_sweep_with_threads, AdaptiveRedundancy, Metrics, SelectionStrategy, SimConfig,
};
use peerback_net::{ArchiveGeometry, LinkModel, RepairCostModel};

/// Width the adaptive arm may trim: 8 blocks off a 16+16 code leaves a
/// floor of 24 placements, comfortably above the reactive threshold of
/// 18 so a freshly narrowed archive is never already due for repair.
const MAX_TRIM: u16 = 8;

/// The gated scenario, shared by both arms: `estimate_probe`'s
/// churn-rich 16+16 geometry (all-Pareto lifetime mix, reactive
/// threshold two blocks above `k`) with `LearnedAge` selection, so the
/// lifetime model that feeds the redundancy policy is trained by the
/// run itself.
fn gated_config(args: &HarnessArgs, adaptive: bool) -> SimConfig {
    let mut cfg = args
        .base_config()
        .with_strategy(SelectionStrategy::LearnedAge);
    cfg.k = 16;
    cfg.m = 16;
    cfg.quota = 72;
    cfg.maintenance = peerback_core::MaintenancePolicy::Reactive { threshold: 18 };
    cfg.profiles = ProfileMix::new(vec![
        (
            Profile::new(
                "Flash",
                LifetimeSpec::Pareto {
                    x_min: 30.0,
                    alpha: 1.5,
                },
                0.33,
            ),
            0.5,
        ),
        (
            Profile::new(
                "Transient",
                LifetimeSpec::Pareto {
                    x_min: 120.0,
                    alpha: 1.9,
                },
                0.75,
            ),
            0.3,
        ),
        (
            Profile::new(
                "Seasonal",
                LifetimeSpec::Pareto {
                    x_min: 400.0,
                    alpha: 2.4,
                },
                0.9,
            ),
            0.2,
        ),
    ]);
    if adaptive {
        cfg = cfg.with_adaptive_n(AdaptiveRedundancy::tuned(MAX_TRIM));
    }
    cfg
}

/// The §2.2.4 pricing model for this scenario: the gated 16+16
/// geometry at the paper's archive size, over the paper's DSL line.
fn cost_model() -> RepairCostModel {
    RepairCostModel::new(
        LinkModel::DSL_2009,
        ArchiveGeometry::new(128.0 * 1024.0 * 1024.0, 16, 16),
    )
}

/// Flags specific to this probe, split off before the shared parse
/// (which rejects unknown flags).
struct GateArgs {
    max_upload_ratio: Option<f64>,
    require_no_extra_loss: bool,
    rest: Vec<String>,
}

fn split_gate_args(args: impl IntoIterator<Item = String>) -> GateArgs {
    let mut max_upload_ratio = None;
    let mut require_no_extra_loss = false;
    let mut rest = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--max-upload-ratio" => {
                let v = iter
                    .next()
                    .unwrap_or_else(|| panic!("flag --max-upload-ratio needs a value"));
                let f: f64 = v
                    .parse()
                    .unwrap_or_else(|_| panic!("--max-upload-ratio expects a number, got {v:?}"));
                assert!(f > 0.0, "--max-upload-ratio must be positive, got {f}");
                max_upload_ratio = Some(f);
            }
            "--require-no-extra-loss" => require_no_extra_loss = true,
            other => rest.push(other.to_string()),
        }
    }
    GateArgs {
        max_upload_ratio,
        require_no_extra_loss,
        rest,
    }
}

fn arm_json(name: &str, args: &HarnessArgs, m: &Metrics) -> String {
    let traffic = ObservedTraffic {
        blocks_uploaded: m.diag.blocks_uploaded,
        blocks_downloaded: m.diag.blocks_downloaded,
        peers: args.peers as u64,
        rounds: args.rounds,
    };
    let priced = traffic.price(&cost_model());
    json::Object::new()
        .str("policy", name)
        .num("losses", m.total_losses())
        .num("repairs", m.total_repairs())
        .num("blocks_uploaded", m.diag.blocks_uploaded)
        .num("blocks_downloaded", m.diag.blocks_downloaded)
        .num("redundancy_widened", m.diag.redundancy_widened)
        .num("redundancy_narrowed", m.diag.redundancy_narrowed)
        .num("preemptive_repairs", m.diag.preemptive_repairs)
        .num("placements_released", m.diag.placements_released)
        .float(
            "mean_restorability",
            m.mean_restorability().unwrap_or(f64::NAN),
        )
        .float("maintenance_secs_per_peer_day", priced.secs_per_peer_day)
        .float(
            "repairs_equiv_per_peer_day",
            priced.repairs_equiv_per_peer_day,
        )
        .render()
}

fn main() -> ExitCode {
    let gate = split_gate_args(std::env::args().skip(1));
    let args = HarnessArgs::parse_from(gate.rest.clone());
    if !args.json {
        eprintln!(
            "adaptive ablation: static/adaptive width at {} peers x {} rounds (seed {}) ...",
            args.peers, args.rounds, args.seed
        );
    }
    let start = Instant::now();
    let configs = vec![gated_config(&args, false), gated_config(&args, true)];
    let results = run_sweep_with_threads(configs, args.thread_count());
    let elapsed = start.elapsed();
    let (stat, adap) = (&results[0], &results[1]);

    let upload_ratio = adap.diag.blocks_uploaded as f64 / stat.diag.blocks_uploaded.max(1) as f64;
    let static_losses = stat.total_losses();
    let adaptive_losses = adap.total_losses();

    if args.json {
        let mut report = json::Object::new()
            .str("probe", "adaptive_probe")
            .num("peers", args.peers as u64)
            .num("rounds", args.rounds)
            .num("seed", args.seed)
            .num("max_trim", MAX_TRIM as u64);
        if !args.stable_json {
            report = report
                .num("shards", args.shards as u64)
                .num("host_cpus", HarnessArgs::host_cpus())
                .float("elapsed_secs", elapsed.as_secs_f64());
        }
        let report = report
            .raw(
                "policies",
                json::array(
                    [("static", stat), ("adaptive", adap)]
                        .iter()
                        .map(|(name, m)| arm_json(name, &args, m)),
                ),
            )
            .float("upload_ratio_adaptive_vs_static", upload_ratio)
            .num(
                "adaptive_within_static_losses",
                u64::from(adaptive_losses <= static_losses),
            )
            .render();
        println!("{report}");
    } else {
        println!(
            "{:<9} {:>8} {:>8} {:>10} {:>12} {:>8} {:>12}",
            "policy", "losses", "repairs", "uploads", "downloads", "restor", "secs/peer/d"
        );
        for (name, m) in [("static", stat), ("adaptive", adap)] {
            let traffic = ObservedTraffic {
                blocks_uploaded: m.diag.blocks_uploaded,
                blocks_downloaded: m.diag.blocks_downloaded,
                peers: args.peers as u64,
                rounds: args.rounds,
            };
            let priced = traffic.price(&cost_model());
            println!(
                "{:<9} {:>8} {:>8} {:>10} {:>12} {:>8.4} {:>12.1}",
                name,
                m.total_losses(),
                m.total_repairs(),
                m.diag.blocks_uploaded,
                m.diag.blocks_downloaded,
                m.mean_restorability().unwrap_or(f64::NAN),
                priced.secs_per_peer_day,
            );
        }
        println!(
            "adaptive policy: {} widened ({} preemptive repairs), {} narrowed \
             ({} placements released)",
            adap.diag.redundancy_widened,
            adap.diag.preemptive_repairs,
            adap.diag.redundancy_narrowed,
            adap.diag.placements_released,
        );
        println!(
            "upload ratio adaptive/static = {upload_ratio:.3}, losses {adaptive_losses} vs \
             {static_losses} (adaptive within static: {})",
            adaptive_losses <= static_losses
        );
    }

    let mut failed = false;
    if let Some(max) = gate.max_upload_ratio {
        if upload_ratio > max {
            eprintln!(
                "FAIL: adaptive uploads ({}) exceed {max:.2}x static uploads ({}) — ratio \
                 {upload_ratio:.3}",
                adap.diag.blocks_uploaded, stat.diag.blocks_uploaded
            );
            failed = true;
        }
    }
    if gate.require_no_extra_loss && adaptive_losses > static_losses {
        eprintln!(
            "FAIL: adaptive losses ({adaptive_losses}) exceed the static baseline \
             ({static_losses})"
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_flags_are_split_from_the_shared_args() {
        let args: Vec<String> = [
            "--peers",
            "100",
            "--max-upload-ratio",
            "0.9",
            "--require-no-extra-loss",
            "--seed",
            "7",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let gate = split_gate_args(args);
        assert_eq!(gate.max_upload_ratio, Some(0.9));
        assert!(gate.require_no_extra_loss);
        assert_eq!(gate.rest, vec!["--peers", "100", "--seed", "7"]);
        let parsed = HarnessArgs::parse_from(gate.rest);
        assert_eq!(parsed.peers, 100);
        assert_eq!(parsed.seed, 7);
    }

    #[test]
    fn gated_scenario_is_valid_and_arm_specific() {
        let args = HarnessArgs::parse_from(Vec::<String>::new());
        let stat = gated_config(&args, false);
        assert!(stat.validate().is_ok());
        assert!(!stat.adaptive_n.enabled);
        let adap = gated_config(&args, true);
        assert!(adap.validate().is_ok());
        assert!(adap.adaptive_n.enabled);
        assert_eq!(adap.adaptive_n.max_trim, MAX_TRIM);
        // The narrowed floor must stay above the reactive threshold so a
        // freshly trimmed archive is not instantly due for repair.
        assert!(adap.k + adap.m - MAX_TRIM > 18);
    }
}
