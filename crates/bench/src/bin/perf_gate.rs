//! CI performance gate: compares fresh `perf_probe --json` samples
//! against the committed baseline in `ci/perf-baseline.json`.
//!
//! The blocking subcommands (`alloc`, `mem` and `rs` are documented on
//! their functions; `rebase` rewrites a committed baseline from a run
//! artifact so cross-host refusals can be re-armed in one step):
//!
//! * `check --baseline FILE SAMPLE...` — takes the **median** of the
//!   samples' `elapsed_secs` and compares it with the baseline's
//!   `median_elapsed_secs`. Prints a GitHub `::warning::` annotation at
//!   `+10%` and exits non-zero (with `::error::`) at `+25%`. Thresholds
//!   are overridable with `--warn-pct` / `--fail-pct`.
//! * `speedup --min-ratio R BASE SHARDED` — asserts that the sharded
//!   run's elapsed time beats the single-worker run by at least `R`×
//!   (the tentpole's ≥2× acceptance criterion). Exits non-zero below
//!   the ratio; prints a `::warning::` when the host has too few CPUs
//!   for the comparison to be meaningful.
//!
//! The workspace is offline (no serde); the reports are flat JSON
//! objects written by `peerback_bench::json`, so a minimal key scanner
//! is sufficient and keeps the gate dependency-free.

use std::process::ExitCode;

use peerback_bench::json;

/// Extracts a top-level numeric field from a flat JSON object.
fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts a top-level string field from a flat JSON object.
fn extract_str(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn read_field(path: &str, key: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    extract_f64(&text, key).ok_or_else(|| format!("{path}: no numeric field {key:?}"))
}

/// Median of a non-empty sample set.
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

struct CheckArgs {
    baseline: String,
    samples: Vec<String>,
    warn_pct: f64,
    fail_pct: f64,
}

fn parse_check(args: &[String]) -> Result<CheckArgs, String> {
    let mut baseline = None;
    let mut samples = Vec::new();
    let mut warn_pct = 10.0;
    let mut fail_pct = 25.0;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--warn-pct" => {
                warn_pct = value("--warn-pct")?
                    .parse()
                    .map_err(|e| format!("--warn-pct: {e}"))?;
            }
            "--fail-pct" => {
                fail_pct = value("--fail-pct")?
                    .parse()
                    .map_err(|e| format!("--fail-pct: {e}"))?;
            }
            other => samples.push(other.to_string()),
        }
    }
    let baseline = baseline.ok_or("check needs --baseline FILE")?;
    if samples.is_empty() {
        return Err("check needs at least one sample JSON".into());
    }
    Ok(CheckArgs {
        baseline,
        samples,
        warn_pct,
        fail_pct,
    })
}

/// Reads an optional numeric field (absent key is not an error).
fn read_optional_field(path: &str, key: &str) -> Result<Option<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(extract_f64(&text, key))
}

fn run_check(args: &[String]) -> Result<ExitCode, String> {
    let args = parse_check(args)?;

    // Elapsed-time comparisons across differing CPU counts are
    // meaningless (the committed 1-CPU dev-container baseline once made
    // the thresholds unreachable on CI runners): refuse them.
    let base_cpus = read_optional_field(&args.baseline, "host_cpus")?;
    let sample_cpus = read_optional_field(&args.samples[0], "host_cpus")?;
    match (base_cpus, sample_cpus) {
        (Some(b), Some(s)) if b != s => {
            println!(
                "::warning::perf baseline {base} was recorded on a {b:.0}-CPU host but this \
                 runner has {s:.0} CPUs — refusing the comparison. Re-arm the gate with \
                 `perf_gate rebase --baseline {base} {sample}` (run it from a checkout on this \
                 runner, or locally on this job's downloaded artifact) and commit the result.",
                base = args.baseline,
                sample = args.samples[0],
            );
            return Ok(ExitCode::SUCCESS);
        }
        (Some(b), None) => {
            println!(
                "::warning::perf samples record no host_cpus (stale probe binary?) but the \
                 baseline was pinned to a {b:.0}-CPU host — refusing the comparison. Rebuild \
                 the probes so samples carry host_cpus."
            );
            return Ok(ExitCode::SUCCESS);
        }
        (None, _) => {
            println!(
                "::warning::perf baseline {} records no host_cpus field; comparing anyway — \
                 refresh it to get the cross-host guard",
                args.baseline
            );
        }
        _ => {}
    }

    let base = read_field(&args.baseline, "median_elapsed_secs")?;
    let timings: Vec<f64> = args
        .samples
        .iter()
        .map(|p| read_field(p, "elapsed_secs"))
        .collect::<Result<_, _>>()?;
    let fresh = median(timings);
    let delta_pct = (fresh / base - 1.0) * 100.0;
    println!(
        "perf_gate: median {fresh:.3}s over {} sample(s) vs baseline {base:.3}s ({delta_pct:+.1}%)",
        args.samples.len()
    );
    if delta_pct >= args.fail_pct {
        println!(
            "::error::perf regression: median elapsed {fresh:.3}s is {delta_pct:+.1}% vs the \
             committed baseline {base:.3}s (fail threshold +{:.0}%)",
            args.fail_pct
        );
        return Ok(ExitCode::FAILURE);
    }
    if delta_pct >= args.warn_pct {
        println!(
            "::warning::perf drift: median elapsed {fresh:.3}s is {delta_pct:+.1}% vs the \
             committed baseline {base:.3}s (warn threshold +{:.0}%)",
            args.warn_pct
        );
    }
    if delta_pct <= -50.0 {
        // A run this far below the baseline means the baseline was
        // recorded on much slower hardware (e.g. the original 1-CPU
        // dev-container figure): the +10%/+25% thresholds cannot fire
        // and the gate is not protecting anything.
        println!(
            "::warning::stale perf baseline: this runner is {:.0}% faster than the committed \
             baseline ({base:.3}s, see its \"runner\" field) — the regression thresholds are \
             unreachable. Refresh ci/perf-baseline.json from this run's artifact.",
            -delta_pct
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn run_speedup(args: &[String]) -> Result<ExitCode, String> {
    let mut min_ratio = 2.0;
    let mut singles = Vec::new();
    let mut shardeds = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match arg.as_str() {
            "--min-ratio" => {
                min_ratio = value("--min-ratio")?
                    .parse()
                    .map_err(|e| format!("--min-ratio: {e}"))?;
            }
            "--single" => singles.push(value("--single")?),
            "--sharded" => shardeds.push(value("--sharded")?),
            other => return Err(format!("speedup: unknown argument {other:?}")),
        }
    }
    if singles.is_empty() || shardeds.is_empty() {
        return Err("speedup needs --single FILE... and --sharded FILE...".into());
    }
    let read_all = |paths: &[String]| -> Result<Vec<f64>, String> {
        paths
            .iter()
            .map(|p| read_field(p, "elapsed_secs"))
            .collect()
    };
    let base = median(read_all(&singles)?);
    let fast = median(read_all(&shardeds)?);
    let ratio = base / fast;
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "perf_gate: sharded speedup {ratio:.2}x (median {base:.3}s over {} -> median {fast:.3}s \
         over {}) on {cpus} CPU(s), required {min_ratio:.2}x",
        singles.len(),
        shardeds.len()
    );
    if ratio < min_ratio {
        if cpus < 4 {
            // A 1–2 core host cannot express the parallelism; surface
            // the miss loudly but do not fail the build over hardware.
            println!(
                "::warning::sharded speedup {ratio:.2}x below the {min_ratio:.2}x target, but \
                 only {cpus} CPU(s) are available — rerun on a multi-core runner"
            );
            return Ok(ExitCode::SUCCESS);
        }
        println!("::error::sharded speedup {ratio:.2}x below the required {min_ratio:.2}x");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// `alloc --budget N SAMPLE.json...`: the zero-allocation steady-state
/// gate. Fails when the median `allocs_per_round` across the samples
/// exceeds the budget, and when any sample lacks the field (the probe
/// was built without `--features count-allocs` — a misconfigured gate
/// must not silently pass).
fn run_alloc(args: &[String]) -> Result<ExitCode, String> {
    let mut budget: Option<f64> = None;
    let mut samples = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--budget" => {
                let v = iter.next().ok_or("flag --budget needs a value")?;
                budget = Some(v.parse().map_err(|e| format!("--budget: {e}"))?);
            }
            other => samples.push(other.to_string()),
        }
    }
    let budget = budget.ok_or("alloc needs --budget N")?;
    if samples.is_empty() {
        return Err("alloc needs at least one sample JSON".into());
    }
    let rates: Vec<f64> = samples
        .iter()
        .map(|p| {
            read_field(p, "allocs_per_round")
                .map_err(|e| format!("{e} (was the probe built with --features count-allocs?)"))
        })
        .collect::<Result<_, _>>()?;
    let rate = median(rates);
    println!(
        "perf_gate: steady-state median {rate:.1} allocs/round over {} sample(s), budget {budget:.1}",
        samples.len()
    );
    if rate > budget {
        println!(
            "::error::allocation regression: steady-state rounds allocate {rate:.1} times \
             per round, above the {budget:.1} budget — a recycled arena or pool path is \
             allocating again"
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Prints the median per-component peer-table layout across samples,
/// so a memory warning or failure names the collection that grew.
fn print_mem_layout(samples: &[String], footprint: f64) -> Result<(), String> {
    const COMPONENTS: [(&str, &str); 5] = [
        ("bytes_peer_table", "peer table"),
        ("bytes_online_index", "online index"),
        ("bytes_hosted_ledgers", "hosted ledgers"),
        ("bytes_archive_states", "archive states"),
        ("bytes_partner_lists", "partner lists"),
    ];
    let mut printed_header = false;
    for (key, label) in COMPONENTS {
        let mut values = Vec::new();
        for p in samples {
            if let Some(v) = read_optional_field(p, key)? {
                values.push(v);
            }
        }
        if values.is_empty() {
            continue; // stale probe binary: no breakdown recorded
        }
        if !printed_header {
            println!("perf_gate: measured per-peer layout (median over samples):");
            printed_header = true;
        }
        let v = median(values);
        println!(
            "perf_gate:   {label:<15} {v:>8.0} bytes/peer ({:>5.1}%)",
            100.0 * v / footprint.max(f64::MIN_POSITIVE)
        );
    }
    Ok(())
}

/// `mem [--warn-above N] [--fail-above N] SAMPLE.json...`: the memory
/// budget gate over `perf_probe --json` samples.
///
/// `--fail-above` is the hard budget: the median `bytes_per_peer` above
/// it fails the build (`::error::`) and prints the per-component layout
/// so the collection that grew is named in the log. `--warn-above` is
/// an optional earlier watchline that only annotates. At least one of
/// the two is required. With a hard budget armed, a sample missing the
/// `bytes_per_peer` field is an error (a misconfigured gate must not
/// pass silently); with only a watchline it warns and passes, matching
/// the historical advisory behaviour.
fn run_mem(args: &[String]) -> Result<ExitCode, String> {
    let mut warn_above: Option<f64> = None;
    let mut fail_above: Option<f64> = None;
    let mut samples = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--warn-above" => {
                let v = iter.next().ok_or("flag --warn-above needs a value")?;
                warn_above = Some(v.parse().map_err(|e| format!("--warn-above: {e}"))?);
            }
            "--fail-above" => {
                let v = iter.next().ok_or("flag --fail-above needs a value")?;
                fail_above = Some(v.parse().map_err(|e| format!("--fail-above: {e}"))?);
            }
            other => samples.push(other.to_string()),
        }
    }
    if warn_above.is_none() && fail_above.is_none() {
        return Err("mem needs --fail-above N (hard budget) and/or --warn-above N".into());
    }
    if samples.is_empty() {
        return Err("mem needs at least one sample JSON".into());
    }
    let mut footprints = Vec::new();
    for p in &samples {
        match read_optional_field(p, "bytes_per_peer")? {
            Some(v) => footprints.push(v),
            None if fail_above.is_some() => {
                return Err(format!(
                    "{p} records no bytes_per_peer (stale probe binary or --stable-json \
                     sample?) — the hard memory budget cannot be checked"
                ));
            }
            None => {
                println!(
                    "::warning::{p} records no bytes_per_peer (stale probe binary or \
                     --stable-json sample?) — skipping the memory check"
                );
                return Ok(ExitCode::SUCCESS);
            }
        }
    }
    let footprint = median(footprints);
    match (fail_above, warn_above) {
        (Some(f), Some(w)) => println!(
            "perf_gate: median {footprint:.0} bytes/peer over {} sample(s), budget {f:.0} \
             (watchline {w:.0})",
            samples.len()
        ),
        (Some(f), None) => println!(
            "perf_gate: median {footprint:.0} bytes/peer over {} sample(s), budget {f:.0}",
            samples.len()
        ),
        (None, Some(w)) => println!(
            "perf_gate: median {footprint:.0} bytes/peer over {} sample(s), warning threshold \
             {w:.0}",
            samples.len()
        ),
        (None, None) => unreachable!("at least one threshold is required"),
    }
    if let Some(budget) = fail_above {
        if footprint > budget {
            println!(
                "::error::peer-table footprint regression: {footprint:.0} bytes per peer slot \
                 is above the {budget:.0}-byte budget — a per-peer column or slab grew. The \
                 layout below names the collection; if the growth is intentional, rebase the \
                 budget in the committed baseline."
            );
            print_mem_layout(&samples, footprint)?;
            return Ok(ExitCode::FAILURE);
        }
    }
    if let Some(watchline) = warn_above {
        if footprint > watchline {
            println!(
                "::warning::peer-table footprint grew: {footprint:.0} bytes per peer slot is \
                 above the {watchline:.0}-byte watchline — check the per-peer columns and \
                 slabs for stride growth before it hits the hard budget."
            );
            print_mem_layout(&samples, footprint)?;
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `rebase --baseline FILE [--runner NAME] ARTIFACT.json...`: rewrites
/// a committed elapsed-time baseline from fresh run artifacts, so a
/// cross-host refusal (`check` printing a `::warning::` about differing
/// `host_cpus`) can be re-armed in one step instead of hand-editing the
/// JSON.
///
/// Scenario identity (`probe`, `peers`, `rounds`, `seed`, `shards`) is
/// copied from the first artifact; `median_elapsed_secs` is the median
/// over every artifact; `host_cpus` must agree across artifacts. When
/// the artifacts carry `bytes_per_peer`, its median and a +25% hard
/// budget (`bytes_per_peer_budget`) are recorded too, keeping the
/// memory gate's threshold alongside the timing baseline it was
/// measured with. The previous baseline's `note` is preserved.
fn run_rebase(args: &[String]) -> Result<ExitCode, String> {
    let mut baseline = None;
    let mut runner = None;
    let mut artifacts = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--runner" => runner = Some(value("--runner")?),
            other => artifacts.push(other.to_string()),
        }
    }
    let baseline = baseline.ok_or("rebase needs --baseline FILE")?;
    if artifacts.is_empty() {
        return Err("rebase needs at least one run artifact JSON".into());
    }

    let first = std::fs::read_to_string(&artifacts[0])
        .map_err(|e| format!("reading {}: {e}", artifacts[0]))?;
    let probe = extract_str(&first, "probe")
        .ok_or_else(|| format!("{}: no \"probe\" field — not a run artifact", artifacts[0]))?;
    let host_cpus = extract_f64(&first, "host_cpus").ok_or_else(|| {
        format!(
            "{}: no host_cpus field (stale probe binary or --stable-json artifact?) — a \
             baseline without it cannot arm the cross-host guard",
            artifacts[0]
        )
    })?;
    let mut timings = Vec::new();
    let mut footprints = Vec::new();
    for p in &artifacts {
        timings.push(read_field(p, "elapsed_secs")?);
        let cpus = read_optional_field(p, "host_cpus")?;
        if cpus != Some(host_cpus) {
            return Err(format!(
                "{p}: host_cpus {:?} differs from {host_cpus} in {} — artifacts from \
                 different hosts cannot form one baseline",
                cpus, artifacts[0]
            ));
        }
        if let Some(v) = read_optional_field(p, "bytes_per_peer")? {
            footprints.push(v);
        }
    }

    // Preserve the old baseline's note (the refresh rule and scenario
    // rationale) when one exists; a missing or unreadable old baseline
    // is fine — rebase can also mint a first baseline.
    let old_note = std::fs::read_to_string(&baseline)
        .ok()
        .and_then(|text| extract_str(&text, "note"));
    let runner = runner.unwrap_or_else(|| format!("{host_cpus:.0}-cpu-host"));

    let mut report = json::Object::new().str("probe", &probe);
    for key in ["peers", "rounds", "seed", "shards"] {
        if let Some(v) = extract_f64(&first, key) {
            report = report.num(key, v as u64);
        }
    }
    report = report
        .num("samples", artifacts.len() as u64)
        .float("median_elapsed_secs", median(timings))
        .num("host_cpus", host_cpus as u64)
        .str("runner", &runner);
    if !footprints.is_empty() {
        let footprint = median(footprints);
        report = report
            .float("median_bytes_per_peer", footprint)
            .num("bytes_per_peer_budget", (footprint * 1.25).ceil() as u64);
    }
    if let Some(note) = old_note {
        report = report.str("note", &note);
    }
    let rendered = report.render();
    std::fs::write(&baseline, format!("{rendered}\n"))
        .map_err(|e| format!("writing {baseline}: {e}"))?;
    println!(
        "perf_gate: rebased {baseline} from {} artifact(s) ({probe}, {host_cpus:.0} CPUs)",
        artifacts.len()
    );
    Ok(ExitCode::SUCCESS)
}

/// `rs --baseline FILE [--min-ratio R] SAMPLE.json...`: the SIMD
/// Reed–Solomon throughput gate over `rs_probe --json` samples.
///
/// Two checks:
/// 1. The best backend must beat scalar by at least `--min-ratio`
///    (default 4.0) — the SIMD kernels' acceptance floor. Hosts whose
///    best backend *is* scalar (no SIMD) warn and pass: hardware, not
///    a regression.
/// 2. The best backend's `best_mib_s` must stay within `--fail-pct`
///    (default 25%) below the baseline's `median_encode_mib_s`, with a
///    `::warning::` from `--warn-pct` (default 10%). Refuses the
///    comparison when the baseline's `host_cpus` or `backend` differ
///    from the sample's — cross-host throughputs don't compare.
fn run_rs(args: &[String]) -> Result<ExitCode, String> {
    let mut baseline = None;
    let mut min_ratio = 4.0f64;
    let mut warn_pct = 10.0f64;
    let mut fail_pct = 25.0f64;
    let mut samples = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--min-ratio" => {
                min_ratio = value("--min-ratio")?
                    .parse()
                    .map_err(|e| format!("--min-ratio: {e}"))?;
            }
            "--warn-pct" => {
                warn_pct = value("--warn-pct")?
                    .parse()
                    .map_err(|e| format!("--warn-pct: {e}"))?;
            }
            "--fail-pct" => {
                fail_pct = value("--fail-pct")?
                    .parse()
                    .map_err(|e| format!("--fail-pct: {e}"))?;
            }
            other => samples.push(other.to_string()),
        }
    }
    if samples.is_empty() {
        return Err("rs needs at least one rs_probe sample JSON".into());
    }

    let first =
        std::fs::read_to_string(&samples[0]).map_err(|e| format!("reading {}: {e}", samples[0]))?;
    let best_backend =
        extract_str(&first, "best_backend").ok_or("sample has no best_backend field")?;
    let speedups: Vec<f64> = samples
        .iter()
        .map(|p| read_field(p, "speedup"))
        .collect::<Result<_, _>>()?;
    let speedup = median(speedups);
    println!(
        "perf_gate: rs encode best backend {best_backend}, median speedup {speedup:.2}x over \
         scalar (required {min_ratio:.2}x)"
    );
    if best_backend == "scalar" {
        println!(
            "::warning::no SIMD gf256 backend is available on this host — the {min_ratio:.2}x \
             speedup floor cannot be checked"
        );
        return Ok(ExitCode::SUCCESS);
    }
    if speedup < min_ratio {
        println!(
            "::error::SIMD encode speedup {speedup:.2}x is below the required {min_ratio:.2}x \
             over scalar — a vectorized gf256 kernel regressed"
        );
        return Ok(ExitCode::FAILURE);
    }

    let Some(baseline) = baseline else {
        return Ok(ExitCode::SUCCESS);
    };
    let base_text = match std::fs::read_to_string(&baseline) {
        Ok(text) => text,
        Err(e) => {
            println!("::warning::rs baseline {baseline} unreadable ({e}) — speedup-only gate");
            return Ok(ExitCode::SUCCESS);
        }
    };
    let base_backend = extract_str(&base_text, "backend");
    let base_cpus = extract_f64(&base_text, "host_cpus");
    let sample_cpus = extract_f64(&first, "host_cpus");
    if base_backend.as_deref() != Some(best_backend.as_str()) || base_cpus != sample_cpus {
        println!(
            "::warning::rs baseline {baseline} was recorded for backend {:?} on {:?} CPUs but \
             this run uses {best_backend} on {:?} — refusing the throughput comparison. \
             Refresh the baseline from this run's artifact.",
            base_backend.as_deref().unwrap_or("?"),
            base_cpus.unwrap_or(f64::NAN),
            sample_cpus.unwrap_or(f64::NAN),
        );
        return Ok(ExitCode::SUCCESS);
    }
    let base = extract_f64(&base_text, "median_encode_mib_s")
        .ok_or_else(|| format!("{baseline}: no numeric field \"median_encode_mib_s\""))?;
    let throughputs: Vec<f64> = samples
        .iter()
        .map(|p| read_field(p, "best_mib_s"))
        .collect::<Result<_, _>>()?;
    let fresh = median(throughputs);
    let delta_pct = (fresh / base - 1.0) * 100.0;
    println!(
        "perf_gate: rs encode {fresh:.1} MiB/s over {} sample(s) vs baseline {base:.1} MiB/s \
         ({delta_pct:+.1}%)",
        samples.len()
    );
    if delta_pct <= -fail_pct {
        println!(
            "::error::rs encode throughput regression: {fresh:.1} MiB/s is {delta_pct:+.1}% vs \
             the committed baseline {base:.1} MiB/s (fail threshold -{fail_pct:.0}%)"
        );
        return Ok(ExitCode::FAILURE);
    }
    if delta_pct <= -warn_pct {
        println!(
            "::warning::rs encode throughput drift: {fresh:.1} MiB/s is {delta_pct:+.1}% vs the \
             committed baseline {base:.1} MiB/s (warn threshold -{warn_pct:.0}%)"
        );
    }
    Ok(ExitCode::SUCCESS)
}

const USAGE: &str = "\
usage: perf_gate <subcommand> [options]
  check   --baseline FILE [--warn-pct P] [--fail-pct P] SAMPLE.json...
          median(SAMPLE elapsed_secs) vs the baseline's median_elapsed_secs;
          ::warning:: at +10%, non-zero exit (::error::) at +25%.
          Refuses (exit 0 + ::warning::) when the baseline's host_cpus
          differs from the samples' — cross-host timings don't compare.
  speedup [--min-ratio R] --single FILE... --sharded FILE...
          require median(single elapsed) / median(sharded elapsed) >= R
          (default 2.0); a warning instead of a failure on <4-CPU hosts
  alloc   --budget N SAMPLE.json...
          require median(allocs_per_round) <= N (samples must come from
          a probe built with --features count-allocs; a missing field
          fails the gate rather than passing silently)
  mem     [--warn-above N] [--fail-above N] SAMPLE.json...
          hard memory budget: non-zero exit (::error:: plus the
          per-component layout) when median(bytes_per_peer) exceeds
          --fail-above; --warn-above is an optional earlier watchline
          that only annotates. At least one threshold is required.
  rebase  --baseline FILE [--runner NAME] ARTIFACT.json...
          rewrite FILE from fresh run artifacts: median elapsed_secs,
          the artifacts' host_cpus (must agree), and — when recorded —
          median bytes_per_peer plus a +25% bytes_per_peer_budget;
          preserves the old baseline's note. Re-arms a cross-host
          refusal in one step.
  rs      --baseline FILE [--min-ratio R] [--warn-pct P] [--fail-pct P]
          SAMPLE.json...
          require median(rs_probe speedup) >= R (default 4.0) and the
          best backend's median(best_mib_s) within -25% of the
          baseline's median_encode_mib_s; scalar-only hosts and
          backend/CPU mismatches warn instead of failing";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("speedup") => run_speedup(&args[1..]),
        Some("alloc") => run_alloc(&args[1..]),
        Some("mem") => run_mem(&args[1..]),
        Some("rebase") => run_rebase(&args[1..]),
        Some("rs") => run_rs(&args[1..]),
        Some("--help" | "-h") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("perf_gate: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fields_from_flat_json() {
        let j = r#"{"probe":"perf_probe","elapsed_secs":1.250000,"peers":100}"#;
        assert_eq!(extract_f64(j, "elapsed_secs"), Some(1.25));
        assert_eq!(extract_f64(j, "peers"), Some(100.0));
        assert_eq!(extract_f64(j, "missing"), None);
        assert_eq!(extract_f64(j, "probe"), None, "strings are not numbers");
    }

    #[test]
    fn extracts_string_fields() {
        let j = r#"{"probe":"rs_probe","best_backend":"avx2","speedup":5.25}"#;
        assert_eq!(extract_str(j, "best_backend").as_deref(), Some("avx2"));
        assert_eq!(extract_str(j, "probe").as_deref(), Some("rs_probe"));
        assert_eq!(extract_str(j, "speedup"), None, "numbers are not strings");
        assert_eq!(extract_str(j, "missing"), None);
    }

    #[test]
    fn median_of_odd_and_even_sets() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(vec![7.0]), 7.0);
    }

    #[test]
    fn cpu_count_mismatch_refuses_the_comparison() {
        let dir = std::env::temp_dir().join("perf_gate_cpu_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let sample = dir.join("sample.json");
        std::fs::write(
            &base,
            r#"{"median_elapsed_secs":10.0,"host_cpus":1,"runner":"a"}"#,
        )
        .unwrap();
        // A sample 10x slower than baseline, but from a different host:
        // the gate must refuse (exit SUCCESS) instead of failing.
        std::fs::write(&sample, r#"{"elapsed_secs":100.0,"host_cpus":8}"#).unwrap();
        let args: Vec<String> = [
            "--baseline",
            base.to_str().unwrap(),
            sample.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(run_check(&args).unwrap(), ExitCode::SUCCESS);

        // Sample without host_cpus (stale probe binary) against a
        // pinned baseline: also refused, not compared.
        std::fs::write(&sample, r#"{"elapsed_secs":100.0}"#).unwrap();
        assert_eq!(run_check(&args).unwrap(), ExitCode::SUCCESS);

        // Same CPU count: the regression fires.
        std::fs::write(&sample, r#"{"elapsed_secs":100.0,"host_cpus":1}"#).unwrap();
        assert_eq!(run_check(&args).unwrap(), ExitCode::FAILURE);
    }

    #[test]
    fn alloc_gate_enforces_the_budget_and_the_field() {
        let dir = std::env::temp_dir().join("perf_gate_alloc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let sample = dir.join("alloc.json");
        let args = |budget: &str| -> Vec<String> {
            ["--budget", budget, sample.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string())
                .collect()
        };
        std::fs::write(&sample, r#"{"allocs_per_round":12.500000}"#).unwrap();
        assert_eq!(run_alloc(&args("64")).unwrap(), ExitCode::SUCCESS);
        assert_eq!(run_alloc(&args("10")).unwrap(), ExitCode::FAILURE);
        // A sample without the field (probe built without the counting
        // allocator) must fail loudly, not pass silently.
        std::fs::write(&sample, r#"{"elapsed_secs":1.0}"#).unwrap();
        assert!(run_alloc(&args("64")).is_err());
    }

    #[test]
    fn mem_gate_enforces_the_hard_budget() {
        let dir = std::env::temp_dir().join("perf_gate_mem_test");
        std::fs::create_dir_all(&dir).unwrap();
        let sample = dir.join("mem.json");
        let args = |flags: &[&str]| -> Vec<String> {
            flags
                .iter()
                .map(|s| s.to_string())
                .chain([sample.to_str().unwrap().to_string()])
                .collect()
        };
        std::fs::write(
            &sample,
            r#"{"bytes_per_peer":4096.000000,"bytes_peer_table":2048.000000,"bytes_partner_lists":2048.000000}"#,
        )
        .unwrap();
        // Under the budget: pass.
        assert_eq!(
            run_mem(&args(&["--fail-above", "8192"])).unwrap(),
            ExitCode::SUCCESS
        );
        // Over the hard budget: the gate blocks (and prints the layout).
        assert_eq!(
            run_mem(&args(&["--fail-above", "1024"])).unwrap(),
            ExitCode::FAILURE
        );
        // Between the watchline and the budget: warn but pass.
        assert_eq!(
            run_mem(&args(&["--warn-above", "1024", "--fail-above", "8192"])).unwrap(),
            ExitCode::SUCCESS
        );
        // Watchline-only mode keeps the historical advisory behaviour.
        assert_eq!(
            run_mem(&args(&["--warn-above", "1024"])).unwrap(),
            ExitCode::SUCCESS
        );
        // Missing field: fatal when the hard budget is armed, skipped
        // with a warning in advisory mode.
        std::fs::write(&sample, r#"{"elapsed_secs":1.0}"#).unwrap();
        assert!(run_mem(&args(&["--fail-above", "8192"])).is_err());
        assert_eq!(
            run_mem(&args(&["--warn-above", "1024"])).unwrap(),
            ExitCode::SUCCESS
        );
        // No thresholds at all is a usage error.
        assert!(run_mem(&args(&[])).is_err());
    }

    #[test]
    fn rebase_rewrites_a_baseline_from_artifacts() {
        let dir = std::env::temp_dir().join("perf_gate_rebase_test");
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json");
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(
            &baseline,
            r#"{"probe":"perf_probe","median_elapsed_secs":9.0,"host_cpus":1,"note":"refresh rule"}"#,
        )
        .unwrap();
        std::fs::write(
            &a,
            r#"{"probe":"perf_probe","peers":4096,"rounds":2000,"seed":42,"shards":8,"host_cpus":8,"elapsed_secs":2.000000,"bytes_per_peer":2664.000000}"#,
        )
        .unwrap();
        std::fs::write(
            &b,
            r#"{"probe":"perf_probe","peers":4096,"rounds":2000,"seed":42,"shards":8,"host_cpus":8,"elapsed_secs":3.000000,"bytes_per_peer":2664.000000}"#,
        )
        .unwrap();
        let args: Vec<String> = [
            "--baseline",
            baseline.to_str().unwrap(),
            "--runner",
            "ci-8cpu",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(run_rebase(&args).unwrap(), ExitCode::SUCCESS);
        let text = std::fs::read_to_string(&baseline).unwrap();
        assert_eq!(extract_f64(&text, "median_elapsed_secs"), Some(2.5));
        assert_eq!(extract_f64(&text, "host_cpus"), Some(8.0));
        assert_eq!(extract_f64(&text, "peers"), Some(4096.0));
        assert_eq!(extract_f64(&text, "samples"), Some(2.0));
        // +25% over the measured footprint, rounded up.
        assert_eq!(extract_f64(&text, "bytes_per_peer_budget"), Some(3330.0));
        assert_eq!(extract_str(&text, "runner").as_deref(), Some("ci-8cpu"));
        // The old baseline's refresh-rule note survives the rewrite.
        assert_eq!(extract_str(&text, "note").as_deref(), Some("refresh rule"));

        // The rebased file immediately arms `check` on the same host.
        std::fs::write(&a, r#"{"elapsed_secs":10.0,"host_cpus":8}"#).unwrap();
        let check: Vec<String> = [
            "--baseline",
            baseline.to_str().unwrap(),
            a.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(run_check(&check).unwrap(), ExitCode::FAILURE);

        // Artifacts from disagreeing hosts cannot form one baseline.
        std::fs::write(
            &b,
            r#"{"probe":"perf_probe","host_cpus":4,"elapsed_secs":3.0}"#,
        )
        .unwrap();
        assert!(run_rebase(&args).is_err());
    }

    #[test]
    fn check_args_parse_with_defaults() {
        let args: Vec<String> = ["--baseline", "b.json", "a.json", "c.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = parse_check(&args).unwrap();
        assert_eq!(parsed.baseline, "b.json");
        assert_eq!(parsed.samples, vec!["a.json", "c.json"]);
        assert_eq!(parsed.warn_pct, 10.0);
        assert_eq!(parsed.fail_pct, 25.0);
    }
}
