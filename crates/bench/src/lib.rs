//! Shared harness code for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the index). They share:
//!
//! * [`HarnessArgs`] — the common command line (`--paper-scale`,
//!   `--peers`, `--rounds`, `--seed`, `--out-dir`, `--threads`);
//! * [`Scale`] — the population/duration presets;
//! * [`HarnessArgs::out_dir`] — where TSVs land (`results/` by default).

use std::path::PathBuf;

use peerback_core::{SelectionStrategy, SimConfig};

/// Allocation counting for the zero-allocation steady-state gate.
///
/// With the `count-allocs` feature a counting wrapper around the system
/// allocator is installed as the global allocator; [`alloc_probe::allocations`]
/// then reports the process-wide number of heap allocations (allocs +
/// reallocs) so far, and `perf_probe --json` derives `allocs_per_round`
/// from the delta across the steady-state window. Without the feature
/// the module compiles to a stub reporting zero with
/// [`alloc_probe::ENABLED`] false, so callers can emit the field only
/// when it means something.
#[cfg(feature = "count-allocs")]
pub mod alloc_probe {
    #![allow(unsafe_code)] // a GlobalAlloc impl is unavoidably unsafe

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Whether allocation counting is compiled in.
    pub const ENABLED: bool = true;

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// The system allocator with an allocation counter bolted on.
    struct CountingAlloc;

    // SAFETY: every method delegates directly to `System`, which
    // upholds the `GlobalAlloc` contract; the only addition is a
    // relaxed atomic increment, which cannot affect the returned
    // memory.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: forwarded verbatim; the caller's obligations are
            // exactly `System::alloc`'s.
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: forwarded verbatim.
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: forwarded verbatim.
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Heap allocations (allocs + reallocs) performed by the process so
    /// far.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

/// Stub when the `count-allocs` feature is off (see the feature-gated
/// module of the same name).
#[cfg(not(feature = "count-allocs"))]
pub mod alloc_probe {
    /// Whether allocation counting is compiled in.
    pub const ENABLED: bool = false;

    /// Always zero without the `count-allocs` feature.
    pub fn allocations() -> u64 {
        0
    }
}

/// Experiment scale presets.
///
/// All reported metrics are normalised (per 1000 peers, per round), so
/// the *shape* of every figure is scale-invariant; the paper scale
/// mainly shrinks error bars. See `tests/scale_invariance.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 2,000 peers, 6,000 rounds. Seconds per run — CI-friendly, but too
    /// short for Elder peers to exist (they need 18 simulated months).
    Smoke,
    /// 8,000 peers, 25,000 rounds (~2.9 years). The default: the
    /// smallest population whose under-90-day cohort can still supply
    /// `n = 256` distinct partners to the youngest owners.
    Default,
    /// The paper's 25,000 peers and 50,000 rounds (~5.7 years).
    Paper,
}

impl Scale {
    /// Population for this scale.
    pub fn peers(self) -> usize {
        match self {
            Scale::Smoke => 2_000,
            Scale::Default => 8_000,
            Scale::Paper => 25_000,
        }
    }

    /// Rounds for this scale.
    pub fn rounds(self) -> u64 {
        match self {
            Scale::Smoke => 6_000,
            Scale::Default => 25_000,
            Scale::Paper => 50_000,
        }
    }
}

/// Parsed command-line arguments shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Population (overrides the scale preset when set).
    pub peers: usize,
    /// Rounds (overrides the scale preset when set).
    pub rounds: u64,
    /// Master seed.
    pub seed: u64,
    /// Output directory for TSVs.
    pub out_dir: PathBuf,
    /// Worker threads for sweeps (0 = all cores).
    pub threads: usize,
    /// Emit machine-readable JSON on stdout instead of (or alongside)
    /// the human-readable report, so perf and audit trajectories can be
    /// tracked across runs and PRs.
    pub json: bool,
    /// Worker threads for the intra-run parallel phases
    /// (`SimConfig::shards`). Results are bit-identical at every value;
    /// only wall-clock changes.
    pub shards: usize,
    /// With `--json`: omit timing fields (elapsed seconds, throughput)
    /// and host facts (CPU count, worker knobs) so two runs of the same
    /// seed diff byte-for-byte — the CI determinism gate compares
    /// `--shards 1` against `--shards 8` this way.
    pub stable_json: bool,
    /// Disable cross-shard work stealing (fixed shard ownership — the
    /// measurable baseline for the steal-speedup gate). Results are
    /// bit-identical either way.
    pub no_steal: bool,
    /// Assign churn profiles by slot range (hot first quarter) instead
    /// of sampling the mix — the work-stealing benchmark scenario.
    pub skewed: bool,
    /// Minimum peer slots per logical shard (`SimConfig::shard_slots`).
    /// Semantic — changes the logical partition and the RNG streams;
    /// two runs only compare at the same value. Default 64.
    pub shard_slots: usize,
    /// Whether `--paper-scale` was passed. Binaries with a dedicated
    /// paper-scale mode (scenario_fabric's single combined-mode run
    /// with sampled audit + scrubbing) switch on this rather than
    /// guessing from the numbers.
    pub paper_scale: bool,
    /// Partner-selection strategy override (`None` keeps the config
    /// default, the paper's age-based rule).
    pub strategy: Option<SelectionStrategy>,
    /// Fraction of peers that misreport (inflate) their age during
    /// negotiation. `0.0` disables the adversarial axis.
    pub misreport: f64,
    /// Round at which hidden churn profiles flip to the mirrored mix
    /// for newly spawned peers (`0` disables the behaviour shift).
    pub shift_round: u64,
    /// Adaptive per-archive redundancy: maximum blocks the policy may
    /// trim below `n` (`SimConfig::adaptive_n`, tuned defaults). `0`
    /// disables the loop (the static-width baseline).
    pub adaptive_n: u16,
    /// Per-peer per-round transfer byte budget for the fabric's
    /// bandwidth-aware scheduler (`0` = instant shipping, the classic
    /// path). Consumed by the combined-mode binaries.
    pub link_cap: u64,
    /// Round at which every joined archive's owner starts a full
    /// restore through the scheduler (`0` = no wave). Implies nothing
    /// without a `--link-cap`-enabled schedule.
    pub flash_restore: u64,
    /// Adversarial host behaviour for the fabric (`--adversary SPEC`,
    /// e.g. `free=0.1,rot=0.02,challenge=16,sample=4`). Inert by
    /// default. Consumed by the combined-mode binaries.
    pub adversary: peerback_fabric::AdversaryConfig,
    /// Correlated failure domains (`--domains` plus the `--outage-*` /
    /// `--partition-*` knobs). `domains == 0` disables the axis.
    pub failure_domains: peerback_core::FailureDomainConfig,
    /// Integrity strikes before a host is quarantined (`0` = never).
    pub quarantine_threshold: u8,
    /// Loss-deadline escalation margin for the transfer scheduler:
    /// repair transfers of archives under `k + margin` placed blocks
    /// jump the class-priority queue (`0` = off).
    pub escalate_margin: u32,
}

/// Parses an `--adversary` spec: comma-separated `key=value` pairs with
/// keys `free` (free-rider fraction), `rot` (rotter fraction),
/// `challenge` (challenge-sweep interval in rounds), `sample`
/// (challenge coverage divisor, 1 = every placement).
///
/// # Panics
///
/// Panics with a usage message on malformed or unknown keys, and on
/// values [`peerback_fabric::AdversaryConfig::validate`] rejects.
pub fn parse_adversary_spec(spec: &str) -> peerback_fabric::AdversaryConfig {
    let mut cfg = peerback_fabric::AdversaryConfig::default();
    for pair in spec.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or_else(|| {
            panic!("--adversary expects key=value pairs, got {pair:?}\n{USAGE}")
        });
        match key {
            "free" => cfg.free_rider_fraction = parse_float(value, "--adversary free"),
            "rot" => cfg.rot_fraction = parse_float(value, "--adversary rot"),
            "challenge" => cfg.challenge_interval = parse_num(value, "--adversary challenge"),
            "sample" => cfg.challenge_sample_period = parse_num(value, "--adversary sample"),
            other => panic!("unknown --adversary key {other:?} in {spec:?}\n{USAGE}"),
        }
    }
    if let Err(e) = cfg.validate() {
        panic!("invalid --adversary spec {spec:?}: {e}\n{USAGE}");
    }
    cfg
}

impl HarnessArgs {
    /// Parses `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut scale = Scale::Default;
        let mut peers = None;
        let mut rounds = None;
        let mut seed = 42;
        let mut out_dir = PathBuf::from("results");
        let mut threads = 0;
        let mut json = false;
        let mut shards = 1;
        let mut stable_json = false;
        let mut no_steal = false;
        let mut skewed = false;
        let mut shard_slots = 64usize;
        let mut strategy = None;
        let mut misreport = 0.0f64;
        let mut shift_round = 0u64;
        let mut adaptive_n = 0u16;
        let mut link_cap = 0u64;
        let mut flash_restore = 0u64;
        let mut adversary = peerback_fabric::AdversaryConfig::default();
        let mut failure_domains = peerback_core::FailureDomainConfig::default();
        let mut quarantine_threshold = 0u8;
        let mut escalate_margin = 0u32;

        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut value_for = |name: &str| {
                iter.next()
                    .unwrap_or_else(|| panic!("flag {name} needs a value\n{USAGE}"))
            };
            match arg.as_str() {
                "--smoke" => scale = Scale::Smoke,
                "--paper-scale" => scale = Scale::Paper,
                "--peers" => peers = Some(parse_num(&value_for("--peers"), "--peers")),
                "--rounds" => rounds = Some(parse_num(&value_for("--rounds"), "--rounds")),
                "--seed" => seed = parse_num(&value_for("--seed"), "--seed"),
                "--out-dir" => out_dir = PathBuf::from(value_for("--out-dir")),
                "--threads" => threads = parse_num(&value_for("--threads"), "--threads") as usize,
                "--shards" => shards = parse_num(&value_for("--shards"), "--shards") as usize,
                "--json" => json = true,
                "--stable-json" => stable_json = true,
                "--no-steal" => no_steal = true,
                "--skewed" => skewed = true,
                "--shard-slots" => {
                    shard_slots = parse_num(&value_for("--shard-slots"), "--shard-slots") as usize;
                }
                "--strategy" => {
                    let name = value_for("--strategy");
                    strategy = Some(SelectionStrategy::from_name(&name).unwrap_or_else(|| {
                        let known: Vec<&str> =
                            SelectionStrategy::ALL.iter().map(|s| s.name()).collect();
                        panic!(
                            "unknown strategy {name:?}; expected one of {}\n{USAGE}",
                            known.join(", ")
                        )
                    }));
                }
                "--misreport" => misreport = parse_float(&value_for("--misreport"), "--misreport"),
                "--shift-round" => {
                    shift_round = parse_num(&value_for("--shift-round"), "--shift-round");
                }
                "--adaptive-n" => {
                    adaptive_n = parse_num(&value_for("--adaptive-n"), "--adaptive-n") as u16;
                }
                "--link-cap" => link_cap = parse_num(&value_for("--link-cap"), "--link-cap"),
                "--flash-restore" => {
                    flash_restore = parse_num(&value_for("--flash-restore"), "--flash-restore");
                }
                "--adversary" => adversary = parse_adversary_spec(&value_for("--adversary")),
                "--domains" => {
                    failure_domains.domains =
                        parse_num(&value_for("--domains"), "--domains") as u32;
                }
                "--outage-rate" => {
                    failure_domains.outage_rate =
                        parse_float(&value_for("--outage-rate"), "--outage-rate");
                }
                "--outage-rounds" => {
                    failure_domains.outage_rounds =
                        parse_num(&value_for("--outage-rounds"), "--outage-rounds");
                }
                "--outage-at" => {
                    failure_domains.outage_at = parse_num(&value_for("--outage-at"), "--outage-at");
                }
                "--partition-rate" => {
                    failure_domains.partition_rate =
                        parse_float(&value_for("--partition-rate"), "--partition-rate");
                }
                "--partition-rounds" => {
                    failure_domains.partition_rounds =
                        parse_num(&value_for("--partition-rounds"), "--partition-rounds");
                }
                "--quarantine-threshold" => {
                    quarantine_threshold = parse_num(
                        &value_for("--quarantine-threshold"),
                        "--quarantine-threshold",
                    ) as u8;
                }
                "--escalate-margin" => {
                    escalate_margin =
                        parse_num(&value_for("--escalate-margin"), "--escalate-margin") as u32;
                }
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?}\n{USAGE}"),
            }
        }
        HarnessArgs {
            peers: peers.unwrap_or(scale.peers() as u64) as usize,
            rounds: rounds.unwrap_or(scale.rounds()),
            seed,
            out_dir,
            threads,
            json,
            shards,
            stable_json,
            no_steal,
            skewed,
            shard_slots,
            paper_scale: scale == Scale::Paper,
            strategy,
            misreport,
            shift_round,
            adaptive_n,
            link_cap,
            flash_restore,
            adversary,
            failure_domains,
            quarantine_threshold,
            escalate_margin,
        }
    }

    /// Base paper configuration at this scale.
    pub fn base_config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper(self.peers, self.rounds, self.seed)
            .with_shards(self.shards)
            .with_work_stealing(!self.no_steal)
            .with_shard_slots(self.shard_slots);
        if self.skewed {
            cfg = cfg.with_skewed_churn();
        }
        if let Some(strategy) = self.strategy {
            cfg = cfg.with_strategy(strategy);
        }
        if self.misreport > 0.0 {
            cfg = cfg.with_misreport(self.misreport);
        }
        if self.shift_round > 0 {
            cfg = cfg.with_shift_profiles_at(self.shift_round);
        }
        if self.adaptive_n > 0 {
            cfg = cfg.with_adaptive_n(peerback_core::AdaptiveRedundancy::tuned(self.adaptive_n));
        }
        if self.failure_domains.domains > 0 {
            cfg = cfg.with_failure_domains(self.failure_domains);
        }
        if self.quarantine_threshold > 0 {
            cfg = cfg.with_quarantine_threshold(self.quarantine_threshold);
        }
        cfg
    }

    /// The fabric schedule requested by `--link-cap`/`--flash-restore`
    /// (`None` when neither axis is engaged — the instant path).
    pub fn schedule(&self) -> Option<peerback_fabric::ScheduleConfig> {
        if self.link_cap == 0 && self.flash_restore == 0 && self.escalate_margin == 0 {
            return None;
        }
        Some(peerback_fabric::ScheduleConfig {
            link_cap: (self.link_cap > 0).then_some(self.link_cap),
            flash_restore: (self.flash_restore > 0).then_some(self.flash_restore),
            escalate_margin: self.escalate_margin,
            ..peerback_fabric::ScheduleConfig::default()
        })
    }

    /// CPUs visible to this process (recorded in perf reports so the
    /// gate refuses to compare timings across differing hosts).
    pub fn host_cpus() -> u64 {
        std::thread::available_parallelism().map_or(1, |n| n.get() as u64)
    }

    /// Resolved worker-thread count.
    pub fn thread_count(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Creates the output directory and returns the path for `name`.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn out_path(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create output directory");
        self.out_dir.join(name)
    }
}

fn parse_num(s: &str, flag: &str) -> u64 {
    s.replace('_', "")
        .parse()
        .unwrap_or_else(|_| panic!("flag {flag} expects a number, got {s:?}\n{USAGE}"))
}

fn parse_float(s: &str, flag: &str) -> f64 {
    let v: f64 = s
        .parse()
        .unwrap_or_else(|_| panic!("flag {flag} expects a number, got {s:?}\n{USAGE}"));
    assert!(
        v.is_finite() && (0.0..=1.0).contains(&v),
        "flag {flag} expects a fraction in [0, 1], got {s:?}\n{USAGE}"
    );
    v
}

const USAGE: &str = "\
usage: <binary> [options]
  --smoke           800 peers, 8k rounds (fast sanity check)
  --paper-scale     25,000 peers, 50,000 rounds (the paper's §4.1 scale)
  --peers N         population override
  --rounds N        duration override
  --seed N          master seed (default 42)
  --out-dir DIR     where TSV output lands (default: results/)
  --threads N       sweep workers (default: all cores)
  --shards N        intra-run worker threads (default 1; results are
                    bit-identical at every value)
  --json            emit a machine-readable JSON report on stdout
                    (perf_probe and scenario_fabric; other binaries
                    ignore the flag and print their usual tables)
  --stable-json     with --json: omit timing/host fields so same-seed
                    runs diff byte-for-byte (the CI determinism gate)
  --no-steal        disable cross-shard work stealing (fixed ownership
                    baseline; results are bit-identical either way)
  --skewed          slot-range-skewed churn: the first quarter of the
                    slot space gets the churniest profile (the
                    work-stealing benchmark scenario)
  --shard-slots N   minimum peer slots per logical shard (default 64;
                    semantic: changes the logical partition and the
                    per-shard RNG streams)
  --strategy NAME   partner-selection strategy override (age-based,
                    random, youngest, uptime-weighted, oracle-lifetime,
                    learned-age; default: the config's age-based rule)
  --misreport F     fraction of peers that inflate their claimed age
                    during negotiation (default 0: off)
  --shift-round N   from round N on, newly spawned peers draw from the
                    mirrored churn-profile mix (default 0: off)
  --adaptive-n N    adaptive per-archive redundancy, trimming targets
                    up to N blocks below n (default 0: static widths)
  --link-cap N      per-peer per-round transfer budget in bytes for the
                    fabric's bandwidth-aware scheduler (default 0:
                    instant shipping; combined-mode binaries only)
  --flash-restore N at round N every joined archive's owner starts a
                    full restore through the scheduler (default 0: off)
  --adversary SPEC  adversarial fabric hosts, e.g.
                    free=0.1,rot=0.02,challenge=16,sample=4
                    (free-rider fraction, rotter fraction, challenge
                    sweep interval, challenge coverage divisor;
                    default: all off)
  --domains N       hash peers into N correlated failure domains
                    (default 0: axis off)
  --outage-rate F   per-domain per-round regional outage probability
  --outage-rounds N rounds an outage keeps its domain offline
  --outage-at N     force one outage of domain 0 at round N
  --partition-rate F per-domain per-round partition probability
  --partition-rounds N rounds a partition blocks new placements
  --quarantine-threshold N integrity strikes before a host is
                    quarantined and its hosted blocks written off
                    (default 0: never)
  --escalate-margin N repair transfers of archives under k+N placed
                    blocks jump the scheduler's priority queue
                    (default 0: off)";

/// Formats a float with sensible precision for tables.
pub fn fmt_rate(v: Option<f64>) -> String {
    match v {
        Some(v) if v > 0.0 && v < 0.001 => format!("{v:.2e}"),
        Some(v) => format!("{v:.4}"),
        None => "n/a".to_string(),
    }
}

/// The thresholds of the paper's §4.2.1 sweep: 132 to 180.
pub const PAPER_THRESHOLDS: [u16; 13] = [
    132, 136, 140, 144, 148, 152, 156, 160, 164, 168, 172, 176, 180,
];

/// Runs the Figure 1/2 threshold sweep: one simulation per threshold,
/// identical parameters otherwise (paper §4.2.1). Returns
/// `(threshold, metrics)` pairs in threshold order.
pub fn threshold_sweep(args: &HarnessArgs) -> Vec<(u16, peerback_core::Metrics)> {
    let configs: Vec<SimConfig> = PAPER_THRESHOLDS
        .iter()
        .map(|&t| args.base_config().with_threshold(t))
        .collect();
    let results = peerback_core::run_sweep_with_threads(configs, args.thread_count());
    PAPER_THRESHOLDS.iter().copied().zip(results).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessArgs {
        HarnessArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_the_default_scale() {
        let a = parse(&[]);
        assert_eq!(a.peers, 8_000);
        assert_eq!(a.rounds, 25_000);
        assert_eq!(a.seed, 42);
        assert_eq!(a.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn paper_scale_flag() {
        let a = parse(&["--paper-scale"]);
        assert_eq!(a.peers, 25_000);
        assert_eq!(a.rounds, 50_000);
    }

    #[test]
    fn json_flag() {
        assert!(!parse(&[]).json);
        assert!(parse(&["--json"]).json);
    }

    #[test]
    fn shards_flag_reaches_the_config() {
        assert_eq!(parse(&[]).shards, 1);
        let a = parse(&["--shards", "8"]);
        assert_eq!(a.shards, 8);
        assert_eq!(a.base_config().shards, 8);
    }

    #[test]
    fn stable_json_flag() {
        assert!(!parse(&[]).stable_json);
        assert!(parse(&["--stable-json"]).stable_json);
    }

    #[test]
    fn steal_and_skew_flags_reach_the_config() {
        let a = parse(&[]);
        assert!(!a.no_steal && !a.skewed);
        assert!(a.base_config().work_stealing);
        assert!(!a.base_config().skewed_churn);
        let a = parse(&["--no-steal", "--skewed"]);
        assert!(!a.base_config().work_stealing);
        assert!(a.base_config().skewed_churn);
    }

    #[test]
    fn explicit_overrides_win() {
        let a = parse(&[
            "--paper-scale",
            "--peers",
            "1000",
            "--rounds",
            "5_000",
            "--seed",
            "7",
        ]);
        assert_eq!(a.peers, 1000);
        assert_eq!(a.rounds, 5000);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn scenario_axis_flags_reach_the_config() {
        let a = parse(&[]);
        assert_eq!(a.strategy, None);
        assert_eq!(a.misreport, 0.0);
        assert_eq!(a.shift_round, 0);
        let a = parse(&[
            "--strategy",
            "learned-age",
            "--misreport",
            "0.25",
            "--shift-round",
            "1200",
        ]);
        let cfg = a.base_config();
        assert_eq!(cfg.strategy, SelectionStrategy::LearnedAge);
        assert_eq!(cfg.misreport_fraction, 0.25);
        assert_eq!(cfg.shift_profiles_at, 1200);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn adaptive_and_scheduler_flags_resolve() {
        let a = parse(&[]);
        assert_eq!(a.adaptive_n, 0);
        assert!(!a.base_config().adaptive_n.enabled);
        assert!(a.schedule().is_none());

        let a = parse(&[
            "--adaptive-n",
            "8",
            "--link-cap",
            "4096",
            "--flash-restore",
            "900",
        ]);
        let cfg = a.base_config();
        assert!(cfg.adaptive_n.enabled);
        assert_eq!(cfg.adaptive_n.max_trim, 8);
        assert!(cfg.validate().is_ok());
        let sched = a.schedule().expect("link cap engages the scheduler");
        assert_eq!(sched.link_cap, Some(4096));
        assert_eq!(sched.flash_restore, Some(900));

        // A flash wave alone still builds a schedule (link-derived
        // budgets, no explicit cap).
        let a = parse(&["--flash-restore", "900"]);
        let sched = a.schedule().expect("wave engages the scheduler");
        assert_eq!(sched.link_cap, None);
    }

    #[test]
    fn adversary_and_failure_domain_flags_resolve() {
        let a = parse(&[]);
        assert!(!a.adversary.any_hostile());
        assert_eq!(a.failure_domains.domains, 0);
        assert_eq!(a.quarantine_threshold, 0);
        assert_eq!(a.escalate_margin, 0);

        let a = parse(&[
            "--adversary",
            "free=0.1,rot=0.02,challenge=16,sample=4",
            "--domains",
            "12",
            "--outage-rate",
            "0.001",
            "--outage-rounds",
            "40",
            "--outage-at",
            "500",
            "--partition-rate",
            "0.002",
            "--partition-rounds",
            "25",
            "--quarantine-threshold",
            "2",
            "--escalate-margin",
            "3",
        ]);
        assert_eq!(a.adversary.free_rider_fraction, 0.1);
        assert_eq!(a.adversary.rot_fraction, 0.02);
        assert_eq!(a.adversary.challenge_interval, 16);
        assert_eq!(a.adversary.challenge_sample_period, 4);
        let cfg = a.base_config();
        assert_eq!(cfg.failure_domains.domains, 12);
        assert_eq!(cfg.failure_domains.outage_rate, 0.001);
        assert_eq!(cfg.failure_domains.outage_rounds, 40);
        assert_eq!(cfg.failure_domains.outage_at, 500);
        assert_eq!(cfg.failure_domains.partition_rate, 0.002);
        assert_eq!(cfg.failure_domains.partition_rounds, 25);
        assert_eq!(cfg.quarantine_threshold, 2);
        assert!(cfg.validate().is_ok());
        // An escalation margin alone engages the scheduler.
        let a = parse(&["--escalate-margin", "2"]);
        let sched = a.schedule().expect("margin engages the scheduler");
        assert_eq!(sched.link_cap, None);
        assert_eq!(sched.escalate_margin, 2);
    }

    #[test]
    #[should_panic(expected = "unknown --adversary key")]
    fn unknown_adversary_key_panics() {
        let _ = parse(&["--adversary", "free=0.1,evil=1"]);
    }

    #[test]
    #[should_panic(expected = "key=value")]
    fn malformed_adversary_pair_panics() {
        let _ = parse(&["--adversary", "free"]);
    }

    #[test]
    #[should_panic(expected = "invalid --adversary spec")]
    fn out_of_range_adversary_fraction_panics() {
        let _ = parse(&["--adversary", "rot=0.2,sample=0"]);
    }

    #[test]
    #[should_panic(expected = "unknown strategy")]
    fn unknown_strategy_panics() {
        let _ = parse(&["--strategy", "astrology"]);
    }

    #[test]
    #[should_panic(expected = "fraction in [0, 1]")]
    fn out_of_range_misreport_panics() {
        let _ = parse(&["--misreport", "1.5"]);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(&["--frobnicate"]);
    }

    #[test]
    #[should_panic(expected = "expects a number")]
    fn bad_number_panics() {
        let _ = parse(&["--peers", "many"]);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(None), "n/a");
        assert_eq!(fmt_rate(Some(1.5)), "1.5000");
        assert_eq!(fmt_rate(Some(0.0005)), "5.00e-4");
        assert_eq!(fmt_rate(Some(0.0)), "0.0000");
    }

    #[test]
    fn base_config_is_valid() {
        let a = parse(&["--smoke"]);
        assert!(a.base_config().validate().is_ok());
    }
}

/// Reed–Solomon encode throughput measurement, shared by `rs_probe`
/// (the per-backend CI gate sample) and `scenario_fabric --paper-scale`
/// (the `encode_mib_s` report field).
pub mod rs_bench {
    use std::time::{Duration, Instant};

    /// Data-shard payload used for throughput runs: large enough that
    /// table setup and loop overhead vanish, small enough to stay in
    /// cache-friendly territory.
    pub const SHARD_BYTES: usize = 64 * 1024;

    /// Measures streaming encode throughput of the paper-default RS
    /// geometry with the **currently active** gf256 backend, in MiB of
    /// source data per second. Deterministic input; the measured region
    /// reuses one parity arena, so steady-state encode speed is what is
    /// timed, not allocation.
    pub fn encode_mib_s() -> f64 {
        let rs = peerback_erasure::ReedSolomon::paper_default();
        let k = rs.data_shards();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|s| {
                (0..SHARD_BYTES)
                    .map(|i| {
                        let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (s as u64);
                        (x >> 32) as u8
                    })
                    .collect()
            })
            .collect();
        let mut parity: Vec<Vec<u8>> = vec![Vec::new(); rs.parity_shards()];
        // Warm-up pass sizes the parity arena and faults the tables in.
        rs.encode_into(&data, &mut parity).expect("valid geometry");

        let target = Duration::from_millis(300);
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            rs.encode_into(&data, &mut parity).expect("valid geometry");
            iters += 1;
            if start.elapsed() >= target {
                break;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let bytes = iters as f64 * (k * SHARD_BYTES) as f64;
        bytes / elapsed / (1024.0 * 1024.0)
    }
}

/// A minimal JSON object/array writer for the `--json` report mode.
///
/// The offline dependency set has no serde; the harness binaries emit
/// flat reports (numbers, strings, arrays of numbers, nested objects),
/// which this covers in a few lines. Keys and strings are escaped,
/// numbers are rendered with enough precision to round-trip.
pub mod json {
    /// Escapes a string for use inside JSON quotes.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Builds one JSON object, insertion-ordered.
    #[derive(Debug, Default)]
    pub struct Object {
        fields: Vec<(String, String)>,
    }

    impl Object {
        /// An empty object.
        pub fn new() -> Self {
            Object::default()
        }

        /// Adds a pre-rendered JSON value.
        pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
            self.fields.push((key.to_string(), value.into()));
            self
        }

        /// Adds an integer field.
        pub fn num(self, key: &str, value: impl Into<u64>) -> Self {
            let v: u64 = value.into();
            self.raw(key, v.to_string())
        }

        /// Adds a float field (NaN/inf render as null).
        pub fn float(self, key: &str, value: f64) -> Self {
            let rendered = if value.is_finite() {
                format!("{value:.6}")
            } else {
                "null".to_string()
            };
            self.raw(key, rendered)
        }

        /// Adds a string field.
        pub fn str(self, key: &str, value: &str) -> Self {
            self.raw(key, format!("\"{}\"", escape(value)))
        }

        /// Adds an array of integers.
        pub fn nums<I: IntoIterator<Item = u64>>(self, key: &str, values: I) -> Self {
            let inner: Vec<String> = values.into_iter().map(|v| v.to_string()).collect();
            self.raw(key, format!("[{}]", inner.join(",")))
        }

        /// Renders the object.
        pub fn render(&self) -> String {
            let inner: Vec<String> = self
                .fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }

    /// Renders an array from pre-rendered values.
    pub fn array<I: IntoIterator<Item = String>>(values: I) -> String {
        let inner: Vec<String> = values.into_iter().collect();
        format!("[{}]", inner.join(","))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn renders_flat_and_nested() {
            let nested = Object::new().num("a", 1u64).render();
            let obj = Object::new()
                .str("name", "x\"y")
                .float("rate", 0.5)
                .nums("counts", [1u64, 2, 3])
                .raw("inner", nested)
                .render();
            assert_eq!(
                obj,
                "{\"name\":\"x\\\"y\",\"rate\":0.500000,\"counts\":[1,2,3],\"inner\":{\"a\":1}}"
            );
        }

        #[test]
        fn non_finite_floats_become_null() {
            assert_eq!(Object::new().float("v", f64::NAN).render(), "{\"v\":null}");
        }

        #[test]
        fn array_of_objects() {
            let parts = vec![
                Object::new().num("i", 0u64).render(),
                Object::new().num("i", 1u64).render(),
            ];
            assert_eq!(array(parts), "[{\"i\":0},{\"i\":1}]");
        }
    }
}
