//! Property tests on the public wire formats: decoding arbitrary bytes
//! must never panic, and valid encodings must round-trip exactly —
//! including the fabric's block frames under the fault plane's shapes
//! (truncation mid-header, bit flips in the payload, duplicate
//! delivery), which must all surface as typed errors.

use proptest::prelude::*;

use bytes::Bytes;
use peerback::core::archive::Entry;
use peerback::core::master::{ArchiveDescriptor, BlockPlacement};
use peerback::core::{Archive, MasterBlock};
use peerback::fabric::{BlockFrame, BlockStore, FrameError, IngestError};

fn arb_descriptor() -> impl Strategy<Value = ArchiveDescriptor> {
    (
        any::<u64>(),
        any::<u64>(),
        1u16..=256,
        0u16..=128,
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..32),
        proptest::collection::vec((any::<u32>(), any::<u64>()), 0..40),
    )
        .prop_map(
            |(archive_id, payload_len, k, m, is_metadata, session_key, placements)| {
                ArchiveDescriptor {
                    archive_id,
                    payload_len,
                    k,
                    m,
                    is_metadata,
                    session_key,
                    placements: placements
                        .into_iter()
                        .map(|(shard_index, partner)| BlockPlacement {
                            shard_index,
                            partner,
                        })
                        .collect(),
                }
            },
        )
}

proptest! {
    #[test]
    fn master_block_round_trips(
        owner in any::<u64>(),
        created_at in any::<u64>(),
        version in any::<u64>(),
        archives in proptest::collection::vec(arb_descriptor(), 0..8),
    ) {
        let mb = MasterBlock { owner, created_at, version, archives };
        let bytes = mb.to_bytes();
        let back = MasterBlock::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, mb);
    }

    #[test]
    fn master_block_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Must return Ok or Err, never panic or hang.
        let _ = MasterBlock::from_bytes(&bytes);
    }

    #[test]
    fn archive_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = Archive::from_bytes(&bytes);
    }

    #[test]
    fn archive_round_trips(
        id in any::<u64>(),
        is_metadata in any::<bool>(),
        entries in proptest::collection::vec(
            ("[a-z/._-]{0,24}", proptest::collection::vec(any::<u8>(), 0..128)),
            0..6,
        ),
    ) {
        let archive = Archive::from_entries(
            id,
            is_metadata,
            entries
                .into_iter()
                .map(|(name, data)| Entry { name, data: Bytes::from(data) })
                .collect(),
        );
        let back = Archive::from_bytes(&archive.to_bytes()).unwrap();
        prop_assert_eq!(back, archive);
    }

    #[test]
    fn truncated_master_blocks_error_cleanly(
        archives in proptest::collection::vec(arb_descriptor(), 1..4),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mb = MasterBlock { owner: 1, created_at: 2, version: 3, archives };
        let bytes = mb.to_bytes();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(MasterBlock::from_bytes(&bytes[..cut]).is_err());
    }

    // ----- fabric block frames under the fault plane's shapes ------------

    #[test]
    fn block_frames_round_trip(
        owner in any::<u32>(),
        archive in any::<u8>(),
        shard_index in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let frame = BlockFrame { owner, archive, shard_index, payload };
        let back = BlockFrame::from_bytes(&frame.to_bytes()).unwrap();
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn frame_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = BlockFrame::from_bytes(&bytes);
    }

    #[test]
    fn truncation_anywhere_including_mid_header_is_a_typed_wire_error(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        cut_fraction in 0.0f64..1.0,
    ) {
        let frame = BlockFrame { owner: 9, archive: 1, shard_index: 3, payload };
        let bytes = frame.to_bytes();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        // Typed error — never a panic, never a silent success. Cuts
        // inside the 13-byte header and inside the payload alike.
        prop_assert!(
            matches!(
                BlockFrame::from_bytes(&bytes[..cut]),
                Err(FrameError::Wire(_))
            ),
            "truncation at {cut} of {} did not yield a wire error",
            bytes.len()
        );
    }

    #[test]
    fn single_bit_corruption_never_decodes_silently(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        bit_fraction in 0.0f64..1.0,
    ) {
        let frame = BlockFrame { owner: 5, archive: 0, shard_index: 7, payload };
        let mut bytes = frame.to_bytes();
        let bit = ((bytes.len() * 8 - 1) as f64 * bit_fraction) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(BlockFrame::from_bytes(&bytes).is_err(), "flip of bit {} accepted", bit);
    }

    #[test]
    fn payload_bit_flips_specifically_fail_the_checksum(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        bit_fraction in 0.0f64..1.0,
    ) {
        let frame = BlockFrame { owner: 5, archive: 0, shard_index: 7, payload };
        let mut bytes = frame.to_bytes();
        let payload_start = 17; // magic 4 + owner 4 + archive 1 + shard 4 + len 4
        let payload_bits = (bytes.len() - payload_start - 8) * 8;
        prop_assume!(payload_bits > 0);
        let bit = ((payload_bits - 1) as f64 * bit_fraction) as usize;
        bytes[payload_start + bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            matches!(
                BlockFrame::from_bytes(&bytes),
                Err(FrameError::ChecksumMismatch { .. })
            ),
            "payload flip of bit {bit} was not a checksum mismatch"
        );
    }

    #[test]
    fn duplicate_frame_delivery_is_refused_not_merged(
        host in any::<u32>(),
        owner in any::<u32>(),
        archive in any::<u8>(),
        shard_index in 0u32..64,
        payload in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut store = BlockStore::new();
        let bytes = BlockFrame { owner, archive, shard_index, payload }.to_bytes();
        store.ingest(host, &bytes).unwrap();
        // The retransmitted copy surfaces as a typed error…
        prop_assert!(
            matches!(
                store.ingest(host, &bytes),
                Err(IngestError::DuplicateFrame { stored_shard, .. }) if stored_shard == shard_index
            ),
            "duplicate delivery was not refused as DuplicateFrame"
        );
        // …and the store kept exactly one copy.
        prop_assert_eq!(store.total_blocks(), 1);
    }
}
