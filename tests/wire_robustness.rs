//! Property tests on the public wire formats: decoding arbitrary bytes
//! must never panic, and valid encodings must round-trip exactly.

use proptest::prelude::*;

use bytes::Bytes;
use peerback::core::archive::Entry;
use peerback::core::master::{ArchiveDescriptor, BlockPlacement};
use peerback::core::{Archive, MasterBlock};

fn arb_descriptor() -> impl Strategy<Value = ArchiveDescriptor> {
    (
        any::<u64>(),
        any::<u64>(),
        1u16..=256,
        0u16..=128,
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..32),
        proptest::collection::vec((any::<u32>(), any::<u64>()), 0..40),
    )
        .prop_map(
            |(archive_id, payload_len, k, m, is_metadata, session_key, placements)| {
                ArchiveDescriptor {
                    archive_id,
                    payload_len,
                    k,
                    m,
                    is_metadata,
                    session_key,
                    placements: placements
                        .into_iter()
                        .map(|(shard_index, partner)| BlockPlacement {
                            shard_index,
                            partner,
                        })
                        .collect(),
                }
            },
        )
}

proptest! {
    #[test]
    fn master_block_round_trips(
        owner in any::<u64>(),
        created_at in any::<u64>(),
        version in any::<u64>(),
        archives in proptest::collection::vec(arb_descriptor(), 0..8),
    ) {
        let mb = MasterBlock { owner, created_at, version, archives };
        let bytes = mb.to_bytes();
        let back = MasterBlock::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, mb);
    }

    #[test]
    fn master_block_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Must return Ok or Err, never panic or hang.
        let _ = MasterBlock::from_bytes(&bytes);
    }

    #[test]
    fn archive_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = Archive::from_bytes(&bytes);
    }

    #[test]
    fn archive_round_trips(
        id in any::<u64>(),
        is_metadata in any::<bool>(),
        entries in proptest::collection::vec(
            ("[a-z/._-]{0,24}", proptest::collection::vec(any::<u8>(), 0..128)),
            0..6,
        ),
    ) {
        let archive = Archive::from_entries(
            id,
            is_metadata,
            entries
                .into_iter()
                .map(|(name, data)| Entry { name, data: Bytes::from(data) })
                .collect(),
        );
        let back = Archive::from_bytes(&archive.to_bytes()).unwrap();
        prop_assert_eq!(back, archive);
    }

    #[test]
    fn truncated_master_blocks_error_cleanly(
        archives in proptest::collection::vec(arb_descriptor(), 1..4),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mb = MasterBlock { owner: 1, created_at: 2, version: 3, archives };
        let bytes = mb.to_bytes();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(MasterBlock::from_bytes(&bytes[..cut]).is_err());
    }
}
