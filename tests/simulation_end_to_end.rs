//! End-to-end simulation tests: the paper's qualitative results must
//! hold on a scaled-down network.
//!
//! Geometry scales with the test population (k = 8, m = 8 instead of
//! 128 + 128) so the tests run in seconds even unoptimised; the
//! protocol logic is identical.

use peerback::{run_simulation, AgeCategory, SelectionStrategy, SimConfig};

/// A small but complete configuration with the scaled-down geometry.
fn small_config(peers: usize, rounds: u64, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper(peers, rounds, seed);
    cfg.k = 8;
    cfg.m = 8;
    cfg.quota = 48;
    cfg = cfg.with_threshold(10);
    cfg
}

#[test]
fn network_forms_and_maintains_itself() {
    let metrics = run_simulation(small_config(400, 6_000, 1));
    // Everyone (plus every replacement) completed an initial upload.
    assert!(metrics.diag.joins_completed >= 400);
    // Churn happened and was survived.
    assert!(metrics.diag.departures > 50, "expected churn");
    assert!(metrics.diag.partner_timeouts > 0, "expected write-offs");
    assert!(metrics.total_repairs() > 0, "expected maintenance");
    // Maintenance traffic was accounted.
    assert!(metrics.diag.blocks_uploaded > 400 * 16);
    assert!(metrics.diag.blocks_downloaded > 0);
}

#[test]
fn same_seed_is_bit_identical_different_seed_is_not() {
    let a = run_simulation(small_config(300, 3_000, 9));
    let b = run_simulation(small_config(300, 3_000, 9));
    let c = run_simulation(small_config(300, 3_000, 10));
    assert_eq!(a.repairs, b.repairs);
    assert_eq!(a.losses, b.losses);
    assert_eq!(a.diag, b.diag);
    assert_eq!(a.samples, b.samples);
    assert!(
        a.diag != c.diag || a.repairs != c.repairs,
        "different seeds should diverge"
    );
}

#[test]
fn sharded_execution_is_bit_identical_to_single_threaded() {
    // `SimConfig::shards` is an execution knob only: worker threads
    // split the fixed logical shards, and the whole `Metrics` struct —
    // time series and restorability floats included — is equal.
    let single = run_simulation(small_config(400, 2_000, 17));
    let sharded = run_simulation(small_config(400, 2_000, 17).with_shards(8));
    assert_eq!(single, sharded);
    assert!(single.total_repairs() > 0, "run too quiet to be meaningful");
}

#[test]
fn repair_cost_stratifies_by_age() {
    // The paper's headline: newcomers repair far more often than old
    // peers (Figure 1's vertical ordering).
    let metrics = run_simulation(small_config(600, 10_000, 3));
    let newcomer = metrics
        .repair_rate_per_1000(AgeCategory::Newcomer)
        .expect("newcomers existed");
    let old = metrics
        .repair_rate_per_1000(AgeCategory::Old)
        .expect("old peers existed");
    assert!(
        newcomer > 1.3 * old,
        "newcomer rate {newcomer} should clearly exceed old-peer rate {old}"
    );
}

#[test]
fn repairs_increase_with_the_threshold() {
    // Figure 1's horizontal trend.
    let lo = run_simulation(small_config(400, 6_000, 5).with_threshold(9));
    let hi = run_simulation(small_config(400, 6_000, 5).with_threshold(13));
    assert!(
        hi.total_repairs() > lo.total_repairs(),
        "higher threshold must repair more: {} vs {}",
        hi.total_repairs(),
        lo.total_repairs()
    );
}

#[test]
fn observers_rank_by_frozen_age() {
    // Figure 3's ordering, coarsened for a small noisy network: the two
    // youngest observers together must out-repair the two oldest.
    let cfg = small_config(600, 10_000, 11).with_paper_observers();
    let metrics = run_simulation(cfg);
    let by_name = |name: &str| {
        metrics
            .observers
            .iter()
            .find(|o| o.name == name)
            .expect("observer present")
            .total_repairs
    };
    let young = by_name("Baby") + by_name("Teenager");
    let old = by_name("Senior") + by_name("Elder");
    assert!(
        young > old,
        "young observers ({young}) should repair more than old ones ({old})"
    );
}

#[test]
fn oracle_is_the_cheapest_strategy_youngest_the_most_expensive() {
    let run = |s: SelectionStrategy| {
        let m = run_simulation(small_config(400, 6_000, 13).with_strategy(s));
        m.total_repairs()
    };
    let oracle = run(SelectionStrategy::OracleLifetime);
    let age = run(SelectionStrategy::AgeBased);
    let youngest = run(SelectionStrategy::Youngest);
    assert!(
        oracle < youngest,
        "oracle ({oracle}) must beat youngest-first ({youngest})"
    );
    assert!(
        age < youngest,
        "age-based ({age}) must beat youngest-first ({youngest})"
    );
}

#[test]
fn losses_appear_only_near_the_decode_limit() {
    // Figure 2: a threshold right above k risks losses; a comfortable
    // one does not. With k = 8, threshold 9 leaves a margin of 1 block.
    let risky = run_simulation(small_config(500, 8_000, 17).with_threshold(9));
    let safe = run_simulation(small_config(500, 8_000, 17).with_threshold(12));
    assert!(
        risky.total_losses() >= safe.total_losses(),
        "tight threshold ({}) should lose at least as much as safe ({})",
        risky.total_losses(),
        safe.total_losses()
    );
    if risky.total_losses() > 0 {
        // Losses, when they occur, fall on the young (paper Figure 2).
        let newcomer_losses =
            risky.losses[AgeCategory::Newcomer.index()] + risky.losses[AgeCategory::Young.index()];
        assert!(
            newcomer_losses * 2 >= risky.total_losses(),
            "losses should be concentrated on young peers: {:?}",
            risky.losses
        );
    }
}

#[test]
fn observer_series_are_monotone_and_sampled() {
    let cfg = small_config(300, 3_000, 19).with_paper_observers();
    let metrics = run_simulation(cfg);
    assert_eq!(metrics.observers.len(), 5);
    for obs in &metrics.observers {
        assert!(!obs.points.is_empty(), "observer series sampled");
        assert!(
            obs.points.windows(2).all(|w| w[0].1 <= w[1].1),
            "cumulative repairs must be monotone"
        );
        assert_eq!(
            obs.points.last().unwrap().1,
            obs.total_repairs,
            "series must end at the total"
        );
    }
}

#[test]
fn census_time_series_is_conserved() {
    let metrics = run_simulation(small_config(350, 3_000, 23));
    for sample in &metrics.samples {
        let total: u64 = sample.census.iter().sum();
        assert_eq!(total, 350, "census must equal the population");
    }
    // Peer-rounds sum equals population x rounds.
    let pr: u64 = metrics.peer_rounds.iter().sum();
    assert_eq!(pr, 350 * 3_000);
}
