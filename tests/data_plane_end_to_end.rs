//! Data-plane integration: archives survive encryption, coding, block
//! loss, repair and the master-block round trip — across geometries and
//! ciphers.

use bytes::Bytes;
use peerback::core::archive::{ArchiveBuilder, Entry};
use peerback::core::{
    Archive, BackupPipeline, MasterBlock, NoCipher, RestorePipeline, XorKeystream,
};
use peerback::erasure::ErasureError;
use peerback::ReedSolomon;

fn sample_archive(id: u64, payload: usize) -> Archive {
    Archive::from_entries(
        id,
        false,
        vec![
            Entry {
                name: "a/b/c.dat".into(),
                data: Bytes::from((0..payload).map(|i| (i % 251) as u8).collect::<Vec<u8>>()),
            },
            Entry {
                name: "empty".into(),
                data: Bytes::new(),
            },
        ],
    )
}

#[test]
fn backup_survives_maximum_tolerable_loss_for_many_geometries() {
    for (k, m) in [(2usize, 2usize), (4, 4), (8, 8), (16, 4), (3, 7)] {
        let rs = ReedSolomon::new(k, m).unwrap();
        let pipeline = BackupPipeline::new(rs, XorKeystream::new(1), 1);
        let archive = sample_archive(9, 1000);
        let partners: Vec<u64> = (0..(k + m) as u64).collect();
        let plan = pipeline.backup(&archive, &partners).unwrap();

        // Keep only k blocks — the worst survivable case — taking the
        // *last* k so parity shards are exercised.
        let survivors: Vec<(usize, Vec<u8>)> = plan
            .blocks
            .iter()
            .rev()
            .take(k)
            .map(|b| (b.shard_index as usize, b.bytes.clone()))
            .collect();

        let restored = RestorePipeline::new(XorKeystream::new(1))
            .restore(&plan.descriptor, &survivors)
            .unwrap();
        assert_eq!(restored, archive, "geometry k={k} m={m}");

        // One fewer shard must fail.
        let too_few = &survivors[..k - 1];
        assert!(matches!(
            RestorePipeline::new(XorKeystream::new(1)).restore(&plan.descriptor, too_few),
            Err(peerback::core::RestoreError::Erasure(
                ErasureError::NotEnoughShards { .. }
            ))
        ));
    }
}

#[test]
fn repair_then_restore_after_repeated_damage() {
    // Lose blocks, repair, lose different blocks, repair again, restore.
    let rs = ReedSolomon::new(6, 6).unwrap();
    let pipeline = BackupPipeline::new(rs, NoCipher, 0);
    let archive = sample_archive(3, 5000);
    let partners: Vec<u64> = (0..12).collect();
    let plan = pipeline.backup(&archive, &partners).unwrap();

    let mut blocks: Vec<(usize, Vec<u8>)> = plan
        .blocks
        .iter()
        .map(|b| (b.shard_index as usize, b.bytes.clone()))
        .collect();

    for wave in 0..3 {
        // Drop 6 pseudo-random blocks.
        let missing: Vec<usize> = (0..12).filter(|i| (i + wave) % 2 == 0).collect();
        blocks.retain(|(i, _)| !missing.contains(i));
        assert_eq!(blocks.len(), 6);

        let new_partners: Vec<u64> = (100 + wave as u64 * 10..106 + wave as u64 * 10).collect();
        let regenerated = pipeline
            .regenerate(&blocks, &missing, &new_partners)
            .unwrap();
        blocks.extend(
            regenerated
                .into_iter()
                .map(|b| (b.shard_index as usize, b.bytes)),
        );
        assert_eq!(blocks.len(), 12);
    }

    let restored = RestorePipeline::new(NoCipher)
        .restore(&plan.descriptor, &blocks)
        .unwrap();
    assert_eq!(restored, archive);
}

#[test]
fn master_block_round_trips_through_bytes_with_many_archives() {
    let rs = ReedSolomon::new(4, 2).unwrap();
    let pipeline = BackupPipeline::new(rs, XorKeystream::new(5), 5);
    let mut master = MasterBlock {
        owner: 77,
        created_at: 123,
        version: 9,
        archives: Vec::new(),
    };
    for id in 0..20 {
        let archive = sample_archive(id, 64 + id as usize * 17);
        let partners: Vec<u64> = (id * 10..id * 10 + 6).collect();
        let plan = pipeline.backup(&archive, &partners).unwrap();
        master.archives.push(plan.descriptor);
    }
    let bytes = master.to_bytes();
    let back = MasterBlock::from_bytes(&bytes).unwrap();
    assert_eq!(back, master);
    assert_eq!(back.restore_order().len(), 20);
}

#[test]
fn archive_builder_pipeline_round_trips_every_entry() {
    let mut builder = ArchiveBuilder::new(512);
    let mut archives = Vec::new();
    let mut originals = Vec::new();
    for i in 0..30usize {
        let name = format!("file-{i}");
        let data: Vec<u8> = (0..(i * 37) % 300).map(|j| (i + j) as u8).collect();
        originals.push((name.clone(), data.clone()));
        archives.extend(builder.push(name, Bytes::from(data)));
    }
    archives.extend(builder.finish());
    assert!(archives.len() > 1, "capacity should have split the stream");

    // Round-trip every archive through bytes; collect entries back.
    let mut recovered = Vec::new();
    for archive in &archives {
        let back = Archive::from_bytes(&archive.to_bytes()).unwrap();
        for e in back.entries() {
            recovered.push((e.name.clone(), e.data.to_vec()));
        }
    }
    assert_eq!(recovered, originals, "no entry lost or reordered");
}

#[test]
fn wrong_cipher_key_never_yields_wrong_data_silently() {
    let rs = ReedSolomon::new(4, 2).unwrap();
    let pipeline = BackupPipeline::new(rs, XorKeystream::new(1000), 1000);
    let archive = sample_archive(1, 2000);
    let partners: Vec<u64> = (0..6).collect();
    let plan = pipeline.backup(&archive, &partners).unwrap();
    let blocks: Vec<(usize, Vec<u8>)> = plan
        .blocks
        .iter()
        .take(4)
        .map(|b| (b.shard_index as usize, b.bytes.clone()))
        .collect();

    for wrong_key in [0u64, 999, 1001, u64::MAX] {
        match RestorePipeline::new(XorKeystream::new(wrong_key)).restore(&plan.descriptor, &blocks)
        {
            Err(_) => {}
            Ok(a) => assert_ne!(a, archive, "wrong key must not reproduce the archive"),
        }
    }
}
