//! Normalised metrics must be stable across population scales — the
//! property that justifies running the paper's experiments on reduced
//! populations (DESIGN.md deviation 5, and the paper's own §4.1 claim
//! that "results should [be] the same for bigger systems").

use peerback::{run_simulation, AgeCategory, SimConfig};

fn config(peers: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper(peers, 8_000, seed);
    cfg.k = 8;
    cfg.m = 8;
    cfg.quota = 48;
    cfg.with_threshold(10)
}

#[test]
fn per_peer_rates_are_stable_across_population_size() {
    let small = run_simulation(config(400, 2));
    let large = run_simulation(config(1_200, 2));

    for cat in [AgeCategory::Newcomer, AgeCategory::Young] {
        let a = small
            .repair_rate_per_1000(cat)
            .expect("rate at small scale");
        let b = large
            .repair_rate_per_1000(cat)
            .expect("rate at large scale");
        let ratio = a.max(b) / a.min(b);
        assert!(
            ratio < 2.0,
            "{}: normalised rates should agree across scales (got {a:.4} vs {b:.4})",
            cat.name()
        );
    }
}

#[test]
fn departure_rate_scales_linearly_with_population() {
    let small = run_simulation(config(400, 4));
    let large = run_simulation(config(1_200, 4));
    let per_peer_small = small.diag.departures as f64 / 400.0;
    let per_peer_large = large.diag.departures as f64 / 1_200.0;
    let ratio = per_peer_small.max(per_peer_large) / per_peer_small.min(per_peer_large);
    assert!(
        ratio < 1.25,
        "departures per peer should be scale-free: {per_peer_small:.3} vs {per_peer_large:.3}"
    );
}
