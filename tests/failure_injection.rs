//! Failure injection: hostile configurations and degenerate populations
//! must degrade gracefully — losses and shortfalls are acceptable,
//! panics and invariant violations are not.

use peerback::churn::{LifetimeSpec, Profile, ProfileMix};
use peerback::{run_simulation, MaintenancePolicy, SimConfig};

fn base(peers: usize, rounds: u64, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper(peers, rounds, seed);
    cfg.k = 8;
    cfg.m = 8;
    cfg.quota = 48;
    cfg.with_threshold(10)
}

#[test]
fn all_erratic_population_survives_or_loses_cleanly() {
    // Every peer is erratic: 33% availability, 1-3 month lifetimes.
    let mut cfg = base(300, 6_000, 1);
    cfg.profiles = ProfileMix::new(vec![(
        Profile::new(
            "OnlyErratic",
            LifetimeSpec::Uniform {
                low: 720,
                high: 2160,
            },
            0.33,
        ),
        1.0,
    )]);
    let metrics = run_simulation(cfg);
    // Mass churn: the network is barely viable, but the simulation must
    // complete with consistent accounting.
    assert!(metrics.diag.departures > 200);
    assert!(metrics.diag.partner_timeouts > 0);
    assert_eq!(metrics.rounds, 6_000);
}

#[test]
fn almost_never_online_population_does_not_hang() {
    let mut cfg = base(200, 2_000, 2);
    cfg.profiles = ProfileMix::new(vec![(
        Profile::new("Ghost", LifetimeSpec::Unlimited, 0.05),
        1.0,
    )]);
    let metrics = run_simulation(cfg);
    // Ghost peers overlap rarely; the archives they do manage to place
    // bleed away through timeouts. Losses are expected — crashes and
    // accounting drift are not.
    assert_eq!(metrics.rounds, 2_000);
    let pr: u64 = metrics.peer_rounds.iter().sum();
    assert_eq!(pr, 200 * 2_000, "census must stay conserved");
}

#[test]
fn always_online_immortals_never_repair_after_joining() {
    let mut cfg = base(200, 4_000, 3);
    cfg.profiles = ProfileMix::new(vec![(
        Profile::new("Titan", LifetimeSpec::Unlimited, 1.0),
        1.0,
    )]);
    let metrics = run_simulation(cfg);
    assert_eq!(metrics.diag.departures, 0);
    assert_eq!(metrics.diag.partner_timeouts, 0);
    assert_eq!(
        metrics.total_repairs(),
        0,
        "no churn means no maintenance at all"
    );
    assert_eq!(metrics.diag.joins_completed, 200);
}

#[test]
fn quota_starvation_yields_shortfalls_not_panics() {
    // Quota exactly n: the market has zero slack.
    let mut cfg = base(300, 4_000, 4);
    cfg.quota = 16;
    let metrics = run_simulation(cfg);
    assert!(
        metrics.diag.pool_shortfalls > 0,
        "a zero-slack market must starve sometimes"
    );
    assert_eq!(metrics.rounds, 4_000);
}

#[test]
fn zero_timeout_disables_write_offs() {
    let mut cfg = base(300, 4_000, 5);
    cfg.offline_timeout = 0;
    let metrics = run_simulation(cfg);
    assert_eq!(metrics.diag.partner_timeouts, 0);
}

#[test]
fn aggressive_timeout_churns_but_survives() {
    let mut cfg = base(300, 4_000, 6);
    cfg.offline_timeout = 2; // two hours: nearly every disconnection kills
    let metrics = run_simulation(cfg);
    assert!(metrics.diag.partner_timeouts > 1_000);
    assert!(metrics.total_repairs() > 0);
    assert_eq!(metrics.rounds, 4_000);
}

#[test]
fn proactive_policy_full_run() {
    let mut cfg = base(300, 4_000, 7);
    cfg.maintenance = MaintenancePolicy::Proactive { tick_rounds: 24 };
    let metrics = run_simulation(cfg);
    assert!(metrics.total_repairs() > 0);
    assert_eq!(metrics.rounds, 4_000);
}

#[test]
fn growth_ramp_with_observers_and_churn() {
    let mut cfg = base(400, 5_000, 8).with_paper_observers();
    cfg.growth_rounds = 1_000;
    let metrics = run_simulation(cfg);
    assert_eq!(metrics.observers.len(), 5);
    assert!(metrics.diag.joins_completed >= 400);
}

#[test]
fn tiny_population_smaller_than_n_cannot_join_but_never_panics() {
    // 10 peers cannot supply 16 distinct partners each.
    let cfg = base(10, 1_000, 9);
    let metrics = run_simulation(cfg);
    assert_eq!(metrics.diag.joins_completed, 0, "joins cannot complete");
    assert!(metrics.diag.pool_shortfalls > 0);
    assert_eq!(metrics.total_losses(), 0, "unjoined peers cannot lose");
}

#[test]
fn single_round_simulation_is_valid() {
    let cfg = base(100, 1, 10);
    let metrics = run_simulation(cfg);
    assert_eq!(metrics.rounds, 1);
}

#[test]
fn mixed_extreme_profiles() {
    // Two-profile world: immortal saints and mayflies.
    let mut cfg = base(400, 6_000, 11);
    cfg.profiles = ProfileMix::new(vec![
        (Profile::new("Saint", LifetimeSpec::Unlimited, 0.99), 0.3),
        (Profile::new("Mayfly", LifetimeSpec::Fixed(72), 0.5), 0.7),
    ]);
    let metrics = run_simulation(cfg);
    // Mayflies die every 3 days; each replacement re-draws a profile,
    // so the population drains into the immortal absorbing state while
    // the replacement machinery runs hot.
    assert!(
        metrics.diag.departures > 500,
        "expected a burst of mayfly deaths, got {}",
        metrics.diag.departures
    );
    assert_eq!(metrics.rounds, 6_000);
}
