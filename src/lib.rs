//! # peerback — lifetime-aware peer-to-peer backup
//!
//! A Rust reproduction of *"Optimizing peer-to-peer backup using lifetime
//! estimations"* (Samuel Bernard & Fabrice Le Fessant, Damap/EDBT
//! workshops 2009): a decentralised backup system in which peers trade
//! free disk space, archives are Reed–Solomon-coded across `n = k + m`
//! partners, and partners are chosen by **age** — because peer lifetimes
//! are heavy-tailed, so the longer a peer has been around, the longer it
//! will stay.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`gf256`] | `peerback-gf256` | GF(2^8) field arithmetic |
//! | [`erasure`] | `peerback-erasure` | systematic Reed–Solomon codec |
//! | [`churn`] | `peerback-churn` | lifetime distributions, profiles, estimators |
//! | [`sim`] | `peerback-sim` | deterministic round-based engine |
//! | [`net`] | `peerback-net` | §2.2.4 bandwidth/repair-cost model |
//! | [`core`] | `peerback-core` | the backup protocol + simulator + data plane |
//! | [`fabric`] | `peerback-fabric` | simulator bound to the real data plane, fault injection, restorability audits |
//! | [`analysis`] | `peerback-analysis` | stats, tables, terminal plots |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Simulate the paper's system
//!
//! ```
//! use peerback::{run_simulation, AgeCategory, SimConfig};
//!
//! // A scaled-down §4.1 configuration (papers' full scale: 25k x 50k).
//! let mut cfg = SimConfig::paper(400, 600, 7);
//! cfg.k = 16;
//! cfg.m = 16;
//! cfg.quota = 96;
//! cfg = cfg.with_threshold(20);
//!
//! let metrics = run_simulation(cfg);
//! assert!(metrics.diag.joins_completed > 0);
//! println!(
//!     "newcomer repair rate: {:?} per 1000 peers per round",
//!     metrics.repair_rate_per_1000(AgeCategory::Newcomer)
//! );
//! ```
//!
//! ## Back up and restore real bytes
//!
//! ```
//! use peerback::core::{Archive, BackupPipeline, RestorePipeline, XorKeystream};
//! use peerback::erasure::ReedSolomon;
//! use peerback::core::archive::Entry;
//! use bytes::Bytes;
//!
//! let archive = Archive::from_entries(0, false, vec![Entry {
//!     name: "notes.txt".into(),
//!     data: Bytes::from_static(b"don't lose this"),
//! }]);
//!
//! let rs = ReedSolomon::new(4, 2).unwrap();
//! let pipeline = BackupPipeline::new(rs, XorKeystream::new(42), 42);
//! let partners: Vec<u64> = (100..106).collect();
//! let plan = pipeline.backup(&archive, &partners).unwrap();
//!
//! // Any k = 4 of the 6 blocks restore the archive.
//! let blocks: Vec<(usize, Vec<u8>)> = plan.blocks[1..5]
//!     .iter()
//!     .map(|b| (b.shard_index as usize, b.bytes.clone()))
//!     .collect();
//! let restored = RestorePipeline::new(XorKeystream::new(42))
//!     .restore(&plan.descriptor, &blocks)
//!     .unwrap();
//! assert_eq!(restored, archive);
//! ```

pub use peerback_analysis as analysis;
pub use peerback_churn as churn;
pub use peerback_core as core;
pub use peerback_erasure as erasure;
pub use peerback_fabric as fabric;
pub use peerback_gf256 as gf256;
pub use peerback_net as net;
pub use peerback_sim as sim;

pub use peerback_core::{
    run_simulation, run_sweep, run_sweep_with_threads, AgeCategory, BackupWorld, MaintenancePolicy,
    Metrics, ObserverSpec, SelectionStrategy, SimConfig,
};
pub use peerback_erasure::ReedSolomon;
pub use peerback_fabric::{run_fabric, FabricConfig, FabricReport, FaultProfile};
pub use peerback_net::{ArchiveGeometry, LinkModel, RepairCostModel};
