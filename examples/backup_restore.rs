//! The full data plane, end to end: collect files into archives,
//! encrypt, erasure-code, record a master block, lose more than half the
//! blocks, repair, and restore every byte.
//!
//! ```text
//! cargo run --release --example backup_restore
//! ```

use bytes::Bytes;
use peerback::core::archive::ArchiveBuilder;
use peerback::core::{Archive, BackupPipeline, MasterBlock, RestorePipeline, XorKeystream};
use peerback::ReedSolomon;

fn main() {
    // 1. Collect "files" into size-capped archives (paper §2.2.1 uses
    //    128 MB archives; we use 4 KB ones so the demo is instant).
    let mut builder = ArchiveBuilder::new(4 * 1024);
    let mut archives = Vec::new();
    for i in 0..8 {
        let name = format!("photos/trip/{i:03}.jpg");
        let data: Vec<u8> = (0..1500).map(|j| ((i * 131 + j * 7) % 251) as u8).collect();
        archives.extend(builder.push(name, Bytes::from(data)));
    }
    archives.extend(builder.finish());
    println!("built {} archives from 8 files", archives.len());

    // 2. Encode each archive into k + m blocks and assign partners.
    //    (The paper's geometry is k = m = 128; we scale down to 8 + 8.)
    let rs = ReedSolomon::new(8, 8).unwrap();
    let session_key = 0x5eed_2009;
    let pipeline = BackupPipeline::new(rs, XorKeystream::new(session_key), session_key);

    let mut master = MasterBlock {
        owner: 1,
        created_at: 0,
        version: 1,
        archives: Vec::new(),
    };
    let mut network: Vec<Vec<(usize, Vec<u8>)>> = Vec::new(); // per-archive surviving blocks
    for archive in &archives {
        let partners: Vec<u64> = (100..116).collect(); // 16 distinct partners
        let plan = pipeline.backup(archive, &partners).unwrap();
        println!(
            "archive {}: {} blocks of {} bytes -> partners {:?}..",
            archive.id,
            plan.blocks.len(),
            plan.blocks[0].bytes.len(),
            &partners[..3]
        );
        master.archives.push(plan.descriptor.clone());
        network.push(
            plan.blocks
                .iter()
                .map(|b| (b.shard_index as usize, b.bytes.clone()))
                .collect(),
        );
    }

    // 3. The master block travels through the network as bytes.
    let wire = master.to_bytes();
    println!("master block serialised: {} bytes", wire.len());
    let recovered_master = MasterBlock::from_bytes(&wire).unwrap();
    assert_eq!(recovered_master, master);

    // 4. Disaster strikes: every archive loses half its blocks
    //    (m = 8 of 16 — the worst survivable case).
    for blocks in &mut network {
        blocks.retain(|(index, _)| index % 2 == 0);
        assert_eq!(blocks.len(), 8);
    }
    println!("dropped every odd-indexed block (8 of 16 per archive)");

    // 5. Repair: regenerate the missing blocks from the survivors
    //    (paper §2.2.3: download k, decode, re-encode the d missing).
    let missing: Vec<usize> = (0..16).filter(|i| i % 2 == 1).collect();
    let new_partners: Vec<u64> = (200..208).collect();
    for (archive, blocks) in archives.iter().zip(&mut network) {
        let regenerated = pipeline
            .regenerate(blocks, &missing, &new_partners)
            .unwrap();
        blocks.extend(
            regenerated
                .iter()
                .map(|b| (b.shard_index as usize, b.bytes.clone())),
        );
        println!(
            "archive {}: repaired {} blocks onto new partners",
            archive.id,
            regenerated.len()
        );
    }

    // 6. Restore from the master block and verify bit-exactness.
    let restore = RestorePipeline::new(XorKeystream::new(session_key));
    for (descriptor, blocks) in recovered_master.restore_order().iter().zip(&network) {
        let restored: Archive = restore.restore(descriptor, blocks).unwrap();
        let original = archives
            .iter()
            .find(|a| a.id == descriptor.archive_id)
            .unwrap();
        assert_eq!(&restored, original);
        println!(
            "archive {} restored: {} entries, {} payload bytes — verified",
            restored.id,
            restored.entries().len(),
            restored.payload_len()
        );
    }
    println!("\nall archives survived the loss of 50% of their blocks.");
}
