//! Comparing maintenance policies and selection strategies on one
//! network — the extension features in a single run.
//!
//! Uses the paper's protocol with three knobs this library adds beyond
//! the paper: the uptime-weighted selection strategy (exploits the
//! monitoring protocol the paper assumes), the adaptive repair threshold
//! (the paper's §6 future work), and the instant-restorability metric.
//!
//! ```text
//! cargo run --release --example policy_comparison
//! ```

use peerback::analysis::TableBuilder;
use peerback::{run_sweep, MaintenancePolicy, SelectionStrategy, SimConfig};

fn main() {
    let base = || {
        let mut cfg = SimConfig::paper(2_500, 8_000, 11);
        cfg.k = 16;
        cfg.m = 16;
        cfg.quota = 96;
        cfg.with_threshold(20)
    };

    let variants: Vec<(&str, SimConfig)> = vec![
        ("paper: age-based + fixed threshold", base()),
        (
            "uptime-weighted selection",
            base().with_strategy(SelectionStrategy::UptimeWeighted),
        ),
        ("adaptive threshold", {
            let mut c = base();
            c.maintenance = MaintenancePolicy::Adaptive {
                base: 20,
                floor_margin: 1,
                step: 1,
            };
            c
        }),
        ("proactive daily top-up", {
            let mut c = base();
            c.maintenance = MaintenancePolicy::Proactive { tick_rounds: 24 };
            c
        }),
        ("two archives per peer", {
            let mut c = base();
            c.archives_per_peer = 2;
            c.quota = 192;
            c
        }),
    ];

    println!("running {} variants in parallel ...\n", variants.len());
    let configs: Vec<SimConfig> = variants.iter().map(|(_, c)| c.clone()).collect();
    let results = run_sweep(configs);

    let mut table = TableBuilder::new().header([
        "variant",
        "repair episodes",
        "blocks moved (up+down)",
        "losses",
        "mean instant-restorability",
    ]);
    for ((name, _), m) in variants.iter().zip(&results) {
        table.row([
            name.to_string(),
            m.total_repairs().to_string(),
            (m.diag.blocks_uploaded + m.diag.blocks_downloaded).to_string(),
            m.total_losses().to_string(),
            m.mean_restorability()
                .map_or("n/a".into(), |f| format!("{f:.4}")),
        ]);
    }
    println!("{}", table.render());
    println!(
        "takeaways (details in EXPERIMENTS.md):\n\
         - uptime-weighted selection cuts maintenance below the paper's age ranking;\n\
         - the adaptive threshold only matters when partners are scarce;\n\
         - proactive top-up buys restorability with far more download traffic;\n\
         - per-archive cost stays flat as peers back up more archives."
    );
}
