//! Capacity planning with the §2.2.4 cost model: "will peer-to-peer
//! backup work on my link?"
//!
//! Computes, for several access links and backup sizes, how long the
//! initial upload takes, how fast repairs are, and what repair rate the
//! link can sustain — the feasibility argument of the paper's
//! introduction, as an interactive table.
//!
//! ```text
//! cargo run --release --example cost_planning
//! ```

use peerback::analysis::TableBuilder;
use peerback::{ArchiveGeometry, LinkModel, RepairCostModel};

fn main() {
    let links = [LinkModel::DSL_2009, LinkModel::DSL_MODERN, LinkModel::FTTH];
    let geometry = ArchiveGeometry::paper_default(); // 128 MB, k=m=128

    println!("link characteristics:\n");
    for link in links {
        println!("  {link}  (down/up asymmetry {:.0}x)", link.asymmetry());
    }

    println!("\nper-archive costs (128 MB archive, k = m = 128):\n");
    let mut table = TableBuilder::new().header([
        "link",
        "initial backup",
        "restore",
        "worst-case repair (d=128)",
        "max repairs/day",
    ]);
    for link in links {
        let model = RepairCostModel::new(link, geometry);
        table.row([
            link.name.to_string(),
            format!("{:.1} h", model.initial_backup_cost().total_secs / 3600.0),
            format!("{:.1} min", model.restore_cost().total_secs / 60.0),
            format!("{:.1} min", model.repair_cost(128).total_secs / 60.0),
            format!("{:.1}", model.max_repairs_per_day()),
        ]);
    }
    println!("{}", table.render());

    println!("planning: how much data can a user protect with 10% of the link?\n");
    let mut table = TableBuilder::new().header([
        "link",
        "backup size",
        "archives",
        "sustainable repairs/day/archive",
        "equivalently one repair per",
    ]);
    for link in links {
        let model = RepairCostModel::new(link, geometry);
        for gb in [1usize, 4, 32] {
            let archives = gb * 8; // 8 x 128 MB archives per GB
            let report = model.feasibility(archives, 0.10);
            table.row([
                link.name.to_string(),
                format!("{gb} GB"),
                archives.to_string(),
                format!("{:.3}", report.repairs_per_day_per_archive),
                format!("{:.1} days", 1.0 / report.repairs_per_day_per_archive),
            ]);
        }
    }
    println!("{}", table.render());

    println!(
        "the simulator (see `quickstart`) shows normal users need roughly one repair\n\
         per archive per hundreds of days once their age exceeds a few weeks — well\n\
         within every link's budget above, which is the paper's viability claim."
    );
}
