//! Combined mode: simulate placement, move real bytes.
//!
//! Runs the same small world twice through the fabric — once with a
//! clean transfer path, once with the fault plane injecting
//! corruption, truncation, link flaps, duplicates and bitrot — and
//! prints what the restorability auditor saw in each case.
//!
//! ```sh
//! cargo run --release --example combined_mode
//! ```

use peerback::{FabricConfig, FaultProfile, MaintenancePolicy, SimConfig};

fn world(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper(64, 300, seed);
    cfg.k = 8;
    cfg.m = 8;
    cfg.quota = 48;
    cfg.maintenance = MaintenancePolicy::Reactive { threshold: 10 };
    cfg
}

fn main() {
    println!("== combined mode: 64 peers, 300 rounds, k=8 m=8 ==\n");

    for (label, faults) in [
        ("clean transfer path", FaultProfile::NONE),
        ("5% fault injection", FaultProfile::uniform(0.05)),
    ] {
        let fabric_cfg = FabricConfig {
            faults,
            ..FabricConfig::default()
        };
        let report = peerback::run_fabric(world(42), fabric_cfg).expect("valid configuration");
        let s = &report.stats;
        let a = &report.audit;
        let failed = s.transfers_corrupted + s.transfers_truncated + s.transfers_flapped;

        println!("-- {label} --");
        println!(
            "  transfers: {} attempted, {} delivered, {} failed \
             ({} corrupted / {} truncated / {} flapped), {} duplicates refused",
            s.transfers_attempted,
            s.transfers_delivered,
            failed,
            s.transfers_corrupted,
            s.transfers_truncated,
            s.transfers_flapped,
            s.duplicate_frames,
        );
        println!(
            "  bytes: {} shipped ({:.1} simulated upload seconds on a modern DSL line)",
            s.bytes_shipped, s.upload_secs
        );
        println!(
            "  repairs: {} episodes, {} real decodes from surviving shards, {} fallbacks",
            s.episodes, s.repair_decodes, s.repair_decode_fallbacks
        );
        println!(
            "  audit: {} checks, {} consistent, {} fault-induced losses, {} mismatches",
            a.checks, a.consistent, a.fault_induced_losses, a.mismatches
        );
        println!(
            "  losses verified byte-side: {} (simulator recorded {})",
            report.losses.len(),
            report.metrics.total_losses()
        );
        for loss in report.losses.iter().take(3) {
            println!(
                "    e.g. round {}: owner {} archive {} down to {}/{} intact shards",
                loss.round, loss.owner, loss.archive, loss.intact_shards, loss.k
            );
        }
        println!();
    }

    println!("the zero-fault run must audit with zero mismatches — that equality");
    println!("(byte-level restorability == simulator prediction, every archive,");
    println!("every round) is what binds the two halves of the system together.");
}
