//! Quickstart: simulate a lifetime-aware backup network and read the
//! paper's headline metrics off it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use peerback::{run_simulation, AgeCategory, SimConfig};

fn main() {
    // A scaled-down version of the paper's §4.1 configuration: same
    // protocol, same profile mix, smaller population and horizon so the
    // example finishes in seconds. (The full scale is
    // `SimConfig::paper_full_scale(seed)` — 25,000 peers, 50,000 rounds.)
    let cfg = SimConfig::paper(2_000, 6_000, 42).with_paper_observers();

    println!(
        "simulating {} peers for {} rounds (~{:.1} simulated months) ...",
        cfg.n_peers,
        cfg.rounds,
        cfg.rounds as f64 / 720.0
    );
    let metrics = run_simulation(cfg);

    println!("\n== network activity ==");
    println!(
        "peers joined (initial uploads): {}",
        metrics.diag.joins_completed
    );
    println!(
        "departures (replaced):          {}",
        metrics.diag.departures
    );
    println!(
        "partner write-offs (timeouts):  {}",
        metrics.diag.partner_timeouts
    );
    println!(
        "repair episodes:                {}",
        metrics.total_repairs()
    );
    println!("archives lost:                  {}", metrics.total_losses());
    println!(
        "maintenance traffic:            {} block uploads, {} block downloads",
        metrics.diag.blocks_uploaded, metrics.diag.blocks_downloaded
    );

    println!("\n== the paper's result: maintenance cost stratifies by age ==");
    for cat in AgeCategory::ALL {
        if let Some(rate) = metrics.repair_rate_per_1000(cat) {
            println!(
                "{:<12} {:.3} repairs per 1000 peers per round",
                cat.name(),
                rate
            );
        } else {
            println!(
                "{:<12} (no peers reached this age within the horizon)",
                cat.name()
            );
        }
    }

    println!("\n== observers (frozen negotiation ages) ==");
    for obs in &metrics.observers {
        println!(
            "{:<9} (age {:>4} h): {:>3} repairs, {} losses",
            obs.name, obs.frozen_age, obs.total_repairs, obs.losses
        );
    }
    println!("\nolder = cheaper to maintain: that is the lifetime-estimation effect.");
}
