//! Why *age* predicts *remaining lifetime* — the statistical heart of
//! the paper, demonstrated directly on the churn substrate.
//!
//! 1. Samples Pareto lifetimes and shows mean residual life growing
//!    with age (the "fidelity" property measured by Bustamante & Qiao).
//! 2. Compares the estimators: the paper's clamped age rank, the Pareto
//!    conditional expectation, and the uptime-weighted extension.
//! 3. Prints acceptance probabilities between peers of different ages.
//!
//! ```text
//! cargo run --release --example lifetime_estimation
//! ```

use peerback::analysis::TableBuilder;
use peerback::churn::estimate::PeerObservation;
use peerback::churn::{
    AgeRank, EmpiricalUptime, LifetimeDist, LifetimeEstimator, Pareto, ParetoConditional,
};
use peerback::core::{acceptance_probability, PAPER_CLAMP_ROUNDS};
use peerback::sim::sim_rng;

fn main() {
    // 1. Fidelity, empirically: among peers that survived to age t, how
    //    long do they keep living? (Pareto: linearly longer in t.)
    let law = Pareto::new(24.0, 1.6); // scale: one day, heavy tail
    let mut rng = sim_rng(9);
    let samples: Vec<f64> = (0..400_000).map(|_| law.sample(&mut rng)).collect();

    println!("fidelity: E[remaining lifetime | age] under Pareto(x_min=1 day, alpha=1.6)\n");
    let mut table = TableBuilder::new().header([
        "age reached",
        "survivors",
        "measured mean remaining (days)",
        "closed form t/(alpha-1) (days)",
    ]);
    for age_days in [1.0f64, 7.0, 30.0, 90.0, 365.0] {
        let age = age_days * 24.0;
        let survivors: Vec<f64> = samples.iter().copied().filter(|&x| x > age).collect();
        let measured =
            survivors.iter().map(|x| x - age).sum::<f64>() / survivors.len() as f64 / 24.0;
        let closed = law.mean_residual_life(age).unwrap() / 24.0;
        table.row([
            format!("{age_days:.0} d"),
            survivors.len().to_string(),
            format!("{measured:.1}"),
            format!("{closed:.1}"),
        ]);
    }
    println!("{}", table.render());
    println!("older peers really are better bets — the basis for age-based selection.\n");

    // 2. The estimators rank candidates identically where it matters.
    type Scorer = Box<dyn Fn(&PeerObservation) -> f64>;
    let estimators: Vec<(&str, Scorer)> = vec![
        ("age-rank (paper)", {
            let e = AgeRank::paper_default();
            Box::new(move |o: &PeerObservation| e.score(o))
        }),
        ("pareto-conditional", {
            let e = ParetoConditional::new(law);
            Box::new(move |o: &PeerObservation| e.score(o))
        }),
        ("empirical-uptime", {
            let e = EmpiricalUptime::paper_default();
            Box::new(move |o: &PeerObservation| e.score(o))
        }),
    ];
    println!("estimator scores for candidates of increasing age (uptime 80%):\n");
    let mut table = TableBuilder::new().header([
        "candidate age",
        "age-rank (paper)",
        "pareto-conditional",
        "empirical-uptime",
    ]);
    for age_days in [0.5f64, 2.0, 14.0, 60.0, 90.0, 400.0] {
        let obs = PeerObservation {
            age_rounds: age_days * 24.0,
            uptime_fraction: Some(0.8),
        };
        let mut row = vec![format!("{age_days} d")];
        for (_, score) in &estimators {
            row.push(format!("{:.0}", score(&obs)));
        }
        table.row(row);
    }
    println!("{}", table.render());

    // 3. The acceptance function in action.
    println!("acceptance probability f(evaluator, candidate), L = 90 days:\n");
    let ages = [(1u64, "1 h"), (24, "1 d"), (720, "1 mo"), (2160, "90 d")];
    let mut table = TableBuilder::new().header(
        std::iter::once("evaluator \\ candidate".to_string())
            .chain(ages.iter().map(|&(_, n)| n.to_string())),
    );
    for &(own, own_name) in &ages {
        let mut row = vec![own_name.to_string()];
        for &(cand, _) in &ages {
            row.push(format!(
                "{:.3}",
                acceptance_probability(own, cand, PAPER_CLAMP_ROUNDS)
            ));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "note the asymmetry: everyone accepts older peers (column right = 1.0),\n\
         but old evaluators rarely accept the very young — newcomers must earn\n\
         their way up. The 1/L floor keeps the system joinable."
    );
}
