//! Tuning the repair threshold `k'` — a miniature of the paper's §4.2.1
//! analysis, the kind of parameter study the authors argue simulation
//! should replace guesswork for ("like the repair threshold which is
//! very difficult to set otherwise").
//!
//! Sweeps a few thresholds on a small network and prints the
//! repair-rate / loss-rate compromise.
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```

use peerback::analysis::TableBuilder;
use peerback::{run_sweep, AgeCategory, SimConfig};

fn main() {
    let thresholds: Vec<u16> = vec![132, 140, 148, 160, 172];
    println!("sweeping k' over {thresholds:?} on a 3,000-peer network (this takes a minute) ...\n");
    let configs: Vec<SimConfig> = thresholds
        .iter()
        .map(|&t| SimConfig::paper(3_000, 10_000, 7).with_threshold(t))
        .collect();
    let results = run_sweep(configs);

    let mut table = TableBuilder::new().header([
        "k'",
        "newcomer repairs /1000/round",
        "elder repairs /1000/round",
        "archives lost",
        "blocks uploaded",
    ]);
    for (t, metrics) in thresholds.iter().zip(&results) {
        table.row([
            t.to_string(),
            metrics
                .repair_rate_per_1000(AgeCategory::Newcomer)
                .map_or("n/a".into(), |r| format!("{r:.3}")),
            metrics
                .repair_rate_per_1000(AgeCategory::Elder)
                .map_or("n/a".into(), |r| format!("{r:.3}")),
            metrics.total_losses().to_string(),
            metrics.diag.blocks_uploaded.to_string(),
        ]);
    }
    println!("{}", table.render());

    println!(
        "reading the table like the paper does:\n\
         - small k' risks data loss (the archive can slip below k before repairing);\n\
         - large k' repairs constantly and burns upload bandwidth;\n\
         - the smallest threshold with a clean loss column is the compromise —\n\
           the paper lands on 148 for k = 128, m = 128."
    );
}
